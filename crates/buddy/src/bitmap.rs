//! The free-page bitmap stored in a buddy-space directory page, plus the
//! buddy-level logic (aligned power-of-two run search) built on top of it.
//!
//! Bit `i` set ⇒ page `i` of the space is **free**. Coalescing of buddies
//! is implicit: a buddy block is free exactly when all its bits are set,
//! so freeing any range automatically re-forms larger blocks.

use lobstore_simdisk::{bytes, cast};

/// An in-memory working copy of a directory bitmap.
///
/// `pages` must be a power of two so that the buddy levels line up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuddyBitmap {
    words: Vec<u64>,
    pages: u32,
}

impl BuddyBitmap {
    /// A bitmap with every page free.
    pub fn all_free(pages: u32) -> Self {
        assert!(pages.is_power_of_two(), "buddy space size must be 2^k");
        assert!(pages >= 64, "buddy space must hold at least 64 pages");
        BuddyBitmap {
            words: vec![u64::MAX; cast::u32_to_usize(pages / 64)],
            pages,
        }
    }

    /// Deserialize from directory-page bytes (little-endian u64 words).
    pub fn from_bytes(bytes: &[u8], pages: u32) -> Self {
        assert!(pages.is_power_of_two() && pages >= 64);
        let n_words = cast::u32_to_usize(pages / 64);
        assert!(bytes.len() >= n_words * 8, "directory bytes too short");
        let words = bytes
            .chunks_exact(8)
            .take(n_words)
            .map(bytes::le_u64)
            .collect();
        BuddyBitmap { words, pages }
    }

    /// Serialize into directory-page bytes.
    ///
    /// # Panics
    /// If `out` is shorter than [`Self::byte_len`].
    pub fn write_bytes(&self, out: &mut [u8]) {
        assert!(out.len() >= self.byte_len(), "directory buffer too short");
        for (chunk, w) in out.chunks_exact_mut(8).zip(&self.words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Number of bytes the serialized bitmap occupies.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }

    /// Pages covered by this bitmap (the buddy-space size).
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// log2 of the space size: the maximum buddy order.
    pub fn max_order(&self) -> u32 {
        self.pages.trailing_zeros()
    }

    /// Whether `page` is free.
    #[inline]
    pub fn is_free(&self, page: u32) -> bool {
        assert!(page < self.pages, "page out of space");
        // In range by the assert: `words` holds exactly `pages / 64` words.
        let w = self
            .words
            .get(cast::u32_to_usize(page / 64))
            .copied()
            .unwrap_or(0);
        w & (1u64 << (page % 64)) != 0
    }

    /// Whether all pages in `[start, start + n)` are free.
    pub fn run_free(&self, start: u32, n: u32) -> bool {
        (start..start + n).all(|p| self.is_free(p))
    }

    /// Mark `[start, start + n)` allocated.
    ///
    /// # Panics
    /// In debug builds, if any page in the range is already allocated.
    pub fn mark_used(&mut self, start: u32, n: u32) {
        assert!(
            start.checked_add(n).is_some_and(|end| end <= self.pages),
            "range out of space"
        );
        for p in start..start + n {
            debug_assert!(self.is_free(p), "double allocation of page {p}");
            if let Some(w) = self.words.get_mut(cast::u32_to_usize(p / 64)) {
                *w &= !(1u64 << (p % 64));
            }
        }
    }

    /// Mark `[start, start + n)` free.
    ///
    /// # Panics
    /// In debug builds, if any page in the range is already free
    /// (double free).
    pub fn mark_free(&mut self, start: u32, n: u32) {
        assert!(
            start.checked_add(n).is_some_and(|end| end <= self.pages),
            "range out of space"
        );
        for p in start..start + n {
            debug_assert!(!self.is_free(p), "double free of page {p}");
            if let Some(w) = self.words.get_mut(cast::u32_to_usize(p / 64)) {
                *w |= 1u64 << (p % 64);
            }
        }
    }

    /// Number of free pages.
    pub fn free_pages(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Find the first free buddy block of order `order` (an aligned run of
    /// `2^order` free pages) and return its start page.
    ///
    /// Implemented by folding the bitmap bottom-up: at each level, bit `i`
    /// means "the order-k block starting at page `i·2^k` is entirely free".
    pub fn find_block(&self, order: u32) -> Option<u32> {
        assert!(order <= self.max_order(), "order beyond space size");
        let level = self.level(order);
        for (wi, &w) in level.iter().enumerate() {
            if w != 0 {
                let bit = w.trailing_zeros();
                let block = wi as u32 * 64 + bit;
                return Some(block << order);
            }
        }
        None
    }

    /// The largest order for which a free aligned block exists, or `None`
    /// if the space is completely full.
    pub fn max_free_order(&self) -> Option<u32> {
        // Fold upward until a level has no set bits.
        let mut cur = self.words.clone();
        if cur.iter().all(|&w| w == 0) {
            return None;
        }
        let mut best = 0u32;
        for order in 1..=self.max_order() {
            cur = fold_level(&cur);
            if cur.iter().all(|&w| w == 0) {
                break;
            }
            best = order;
        }
        Some(best)
    }

    /// Bit vector for buddy order `order` (order 0 = the page bitmap).
    fn level(&self, order: u32) -> Vec<u64> {
        let mut cur = self.words.clone();
        for _ in 0..order {
            cur = fold_level(&cur);
        }
        cur
    }
}

/// One buddy fold: output bit `i` = input bit `2i` AND input bit `2i+1`.
fn fold_level(level: &[u64]) -> Vec<u64> {
    let out_bits = level.len() * 64 / 2;
    let n_words = out_bits.div_ceil(64);
    let mut out = vec![0u64; n_words];
    let bit = |at: usize| level.get(at / 64).copied().unwrap_or(0) >> (at % 64) & 1;
    for i in 0..out_bits {
        if bit(2 * i) & bit(2 * i + 1) == 1 {
            if let Some(w) = out.get_mut(i / 64) {
                *w |= 1u64 << (i % 64);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_space_is_all_free() {
        let b = BuddyBitmap::all_free(256);
        assert_eq!(b.free_pages(), 256);
        assert_eq!(b.max_free_order(), Some(8));
        assert_eq!(b.find_block(8), Some(0));
        assert_eq!(b.find_block(0), Some(0));
    }

    #[test]
    fn mark_and_find() {
        let mut b = BuddyBitmap::all_free(256);
        b.mark_used(0, 3); // trimmed allocation of 3 pages out of a 4-block
        assert!(!b.is_free(0));
        assert!(b.is_free(3));
        // The first order-2 (4-page, aligned) free block starts at 4.
        assert_eq!(b.find_block(2), Some(4));
        // Order-0 block: page 3 is the trim remainder.
        assert_eq!(b.find_block(0), Some(3));
        assert_eq!(
            b.max_free_order(),
            Some(7),
            "half the space still free as one block"
        );
    }

    #[test]
    fn coalescing_is_implicit() {
        let mut b = BuddyBitmap::all_free(128);
        b.mark_used(0, 128);
        assert_eq!(b.max_free_order(), None);
        b.mark_free(0, 64);
        assert_eq!(b.max_free_order(), Some(6));
        b.mark_free(64, 64);
        assert_eq!(b.max_free_order(), Some(7), "buddies coalesce");
        assert_eq!(b.find_block(7), Some(0));
    }

    #[test]
    fn alignment_is_respected() {
        let mut b = BuddyBitmap::all_free(64);
        // Free pages 1..=8: 8 consecutive free pages but no aligned 8-run.
        b.mark_used(0, 64);
        b.mark_free(1, 8);
        assert!(b.run_free(1, 8));
        assert_eq!(b.find_block(3), None, "8-run not aligned");
        assert_eq!(b.find_block(2), Some(4), "pages 4..8 are an aligned 4-run");
        assert_eq!(b.max_free_order(), Some(2));
    }

    #[test]
    fn serialization_roundtrips() {
        let mut b = BuddyBitmap::all_free(512);
        b.mark_used(17, 100);
        let mut buf = vec![0u8; b.byte_len()];
        b.write_bytes(&mut buf);
        let b2 = BuddyBitmap::from_bytes(&buf, 512);
        assert_eq!(b, b2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double allocation")]
    fn double_alloc_panics_in_debug() {
        let mut b = BuddyBitmap::all_free(64);
        b.mark_used(0, 4);
        b.mark_used(2, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut b = BuddyBitmap::all_free(64);
        b.mark_free(0, 1);
    }

    #[test]
    fn full_space_reports_none() {
        let mut b = BuddyBitmap::all_free(64);
        b.mark_used(0, 64);
        assert_eq!(b.find_block(0), None);
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn paper_scale_space() {
        // 16384 pages = 64 MB of 4 KB pages per space.
        let mut b = BuddyBitmap::all_free(16384);
        assert_eq!(b.max_order(), 14);
        let s = b.find_block(13).unwrap(); // a 32 MB segment
        b.mark_used(s, 8192);
        assert_eq!(b.max_free_order(), Some(13));
        assert_eq!(b.byte_len(), 2048, "bitmap fits a 4 KB directory page");
    }
}
