//! Binary buddy disk-space management (§3.1 of Biliris SIGMOD '92).
//!
//! A database area is divided into **buddy spaces**: fixed-length runs of
//! physically adjacent pages, each preceded by a one-page **directory**
//! that records the allocation state of every page in the space. Segments
//! (runs of contiguous pages) are allocated with the binary buddy
//! discipline — internally sizes are powers of two — but, as in EOS:
//!
//! * a client may request a segment of *any* size; the covering buddy
//!   block is found and the unused tail is immediately trimmed back to
//!   free, so requests are satisfied "down to the precision of one block";
//! * a client may free any *portion* of a previously allocated segment,
//!   not necessarily the whole segment.
//!
//! Allocation and deallocation touch only the directory page of one space.
//! To avoid probing every space on allocation, an in-memory
//! **superdirectory** records (an upper bound on) the largest free block
//! in each space; a wrong guess is corrected the first time it misleads
//! us, exactly as described in the paper. In steady state an allocation
//! therefore costs at most one disk access (and usually zero, when the
//! directory page is hot in the buffer pool).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bitmap;
mod manager;

pub use bitmap::BuddyBitmap;
pub use manager::{BuddyConfig, BuddyManager, FragStats};

use lobstore_simdisk::AreaId;

/// A contiguous run of allocated pages within one area.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Extent {
    /// The database area the pages live in.
    pub area: AreaId,
    /// First page of the extent (absolute page number in the area).
    pub start: u32,
    /// Number of pages.
    pub pages: u32,
}

impl Extent {
    /// Build an extent from its area, first page, and page count.
    pub fn new(area: AreaId, start: u32, pages: u32) -> Self {
        Extent { area, start, pages }
    }

    /// Last page of the extent.
    pub fn end(&self) -> u32 {
        // Extent invariants bound start + pages to the area size (the
        // paranoid layer checks this at runtime).
        // loblint: allow(arith-overflow)
        self.start + self.pages
    }

    /// The sub-extent consisting of the first `pages` pages.
    pub fn prefix(&self, pages: u32) -> Extent {
        assert!(pages <= self.pages);
        Extent::new(self.area, self.start, pages)
    }

    /// The sub-extent that remains after removing the first `pages` pages.
    pub fn suffix(&self, pages: u32) -> Extent {
        assert!(pages <= self.pages);
        // Guarded by the assert above: pages <= self.pages <= end().
        // loblint: allow(arith-overflow)
        Extent::new(self.area, self.start + pages, self.pages - pages)
    }
}

impl std::fmt::Display for Extent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:[{}..{})", self.area, self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_prefix_suffix() {
        let e = Extent::new(AreaId::LEAF, 10, 8);
        assert_eq!(e.prefix(3), Extent::new(AreaId::LEAF, 10, 3));
        assert_eq!(e.suffix(3), Extent::new(AreaId::LEAF, 13, 5));
        assert_eq!(e.end(), 18);
        assert_eq!(e.to_string(), "A1:[10..18)");
    }

    #[test]
    #[should_panic]
    fn prefix_beyond_extent_panics() {
        Extent::new(AreaId::LEAF, 0, 4).prefix(5);
    }
}
