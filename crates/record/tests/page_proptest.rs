//! Property-based model checking of the slotted heap page: arbitrary
//! insert/delete/update sequences against a `HashMap` reference model.

use lobstore_record::page;
use lobstore_simdisk::PAGE_SIZE;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>),
    Delete(u16),
    Update(u16, Vec<u8>),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec(any::<u8>(), 0..900).prop_map(Op::Insert),
        2 => (0u16..24).prop_map(Op::Delete),
        2 => ((0u16..24), prop::collection::vec(any::<u8>(), 0..900))
            .prop_map(|(s, b)| Op::Update(s, b)),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn page_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut p = vec![0u8; PAGE_SIZE];
        page::init(&mut p);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        // High-water slot-directory size: tombstoned entries keep their
        // 4 directory bytes until an insert recycles them.
        let mut dir_slots: usize = 0;

        for op in ops {
            match op {
                Op::Insert(bytes) => {
                    if let Some(slot) = page::insert(&mut p, &bytes) {
                        prop_assert!(!model.contains_key(&slot),
                            "live slot {slot} reused");
                        dir_slots = dir_slots.max(slot as usize + 1);
                        model.insert(slot, bytes);
                    } else {
                        // Rejection must only happen for lack of space:
                        // header + directory (tombstones included) + live
                        // cells + the new record would overflow the page.
                        let live: usize = model.values().map(Vec::len).sum();
                        let new_slot = usize::from(dir_slots == model.len());
                        prop_assert!(
                            16 + (dir_slots + new_slot) * 4 + live + bytes.len() > PAGE_SIZE,
                            "spurious rejection: {} live, {} dir slots, {} requested",
                            live, dir_slots, bytes.len());
                    }
                }
                Op::Delete(slot) => {
                    let was_live = model.remove(&slot).is_some();
                    prop_assert_eq!(page::delete(&mut p, slot), was_live);
                }
                Op::Update(slot, bytes) => {
                    let live = model.contains_key(&slot);
                    let ok = page::update(&mut p, slot, &bytes);
                    if ok {
                        prop_assert!(live, "update succeeded on dead slot");
                        model.insert(slot, bytes);
                    } else if live {
                        // Failed grow: record must be unchanged.
                        prop_assert_eq!(page::get(&p, slot).unwrap(), &model[&slot][..]);
                    }
                }
                Op::Compact => page::compact(&mut p),
            }
            // Full state check after every op.
            prop_assert_eq!(page::live_records(&p), model.len());
            for (slot, bytes) in &model {
                prop_assert_eq!(page::get(&p, *slot).unwrap(), &bytes[..],
                    "slot {} corrupted", slot);
            }
        }
    }
}
