//! Slotted heap pages for small records.
//!
//! Classic slotted layout: a fixed header, a slot directory growing
//! forward from the header, and record cells growing backward from the
//! page end. Deleting a record leaves a tombstone slot (so record ids
//! stay stable); the freed bytes are reclaimed by compaction when an
//! insert needs them.
//!
//! ```text
//! ┌──────────┬───────────────┬────── free ──────┬────────┬────────┐
//! │ header   │ slot dir →    │                  │ cell 1 │ cell 0 │
//! └──────────┴───────────────┴──────────────────┴────────┴────────┘
//! 0          16              16+4·n      cell_start          4096
//! ```
//!
//! All functions are pure over a page buffer, so this module is fully
//! testable without a database.

use lobstore_simdisk::{bytes, cast, PAGE_SIZE};

const MAGIC: u32 = 0x4845_4150; // "HEAP"
const HDR: usize = 16;
const SLOT_BYTES: usize = 4;
/// Tombstone marker in a slot's offset field.
const DEAD: u16 = u16::MAX;

fn get_u16(p: &[u8], at: usize) -> u16 {
    bytes::le_u16(&p[at..])
}

fn put_u16(p: &mut [u8], at: usize, v: u16) {
    p[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn n_slots(p: &[u8]) -> u16 {
    get_u16(p, 4)
}

fn cell_start(p: &[u8]) -> u16 {
    get_u16(p, 6)
}

fn slot_at(p: &[u8], slot: u16) -> (u16, u16) {
    let at = HDR + usize::from(slot) * SLOT_BYTES;
    (get_u16(p, at), get_u16(p, at + 2))
}

fn set_slot(p: &mut [u8], slot: u16, off: u16, len: u16) {
    let at = HDR + usize::from(slot) * SLOT_BYTES;
    put_u16(p, at, off);
    put_u16(p, at + 2, len);
}

/// Format `page` as an empty heap page.
pub fn init(page: &mut [u8]) {
    page.fill(0);
    page[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    put_u16(page, 4, 0); // n_slots
    put_u16(page, 6, cast::usize_to_u16(PAGE_SIZE)); // cell_start: cells grow downward
}

/// Whether `page` carries the heap-page magic.
pub fn is_heap(page: &[u8]) -> bool {
    bytes::le_u32(page) == MAGIC
}

/// Contiguous free bytes between the slot directory and the cells
/// (ignoring reclaimable dead-cell space).
pub fn contiguous_free(page: &[u8]) -> usize {
    usize::from(cell_start(page)) - (HDR + usize::from(n_slots(page)) * SLOT_BYTES)
}

/// Total reclaimable free space: everything compaction can recover —
/// the contiguous gap, dead cells, and residue left by in-place
/// shrinking updates. (Tombstone *directory entries* stay, so they count
/// as used.) An insert of `n` bytes succeeds iff
/// `usable_free(page) >= n + 4` (or `>= n` when a dead slot can be
/// recycled).
pub fn usable_free(page: &[u8]) -> usize {
    let mut live = 0usize;
    for s in 0..n_slots(page) {
        let (off, len) = slot_at(page, s);
        if off != DEAD {
            live += usize::from(len);
        }
    }
    PAGE_SIZE - HDR - usize::from(n_slots(page)) * SLOT_BYTES - live
}

/// Number of live records on the page.
pub fn live_records(page: &[u8]) -> usize {
    (0..n_slots(page))
        .filter(|&s| slot_at(page, s).0 != DEAD)
        .count()
}

/// Insert `bytes`; returns the slot number, or `None` if the page cannot
/// hold them even after compaction.
pub fn insert(page: &mut [u8], bytes: &[u8]) -> Option<u16> {
    assert!(is_heap(page), "not a heap page");
    let need = bytes.len();
    if need > usize::from(u16::MAX) {
        return None;
    }
    // Prefer recycling a dead slot (keeps the directory compact).
    let recycled = (0..n_slots(page)).find(|&s| slot_at(page, s).0 == DEAD);
    let slot_cost = if recycled.is_some() { 0 } else { SLOT_BYTES };
    if contiguous_free(page) < need + slot_cost {
        if usable_free(page) < need + slot_cost {
            return None;
        }
        compact(page);
        if contiguous_free(page) < need + slot_cost {
            return None;
        }
    }
    let new_start = usize::from(cell_start(page)) - need;
    page[new_start..new_start + need].copy_from_slice(bytes);
    put_u16(page, 6, cast::usize_to_u16(new_start));
    let slot = match recycled {
        Some(s) => s,
        None => {
            let s = n_slots(page);
            put_u16(page, 4, s + 1);
            s
        }
    };
    set_slot(
        page,
        slot,
        cast::usize_to_u16(new_start),
        cast::usize_to_u16(need),
    );
    Some(slot)
}

/// The record in `slot`, or `None` for a tombstone / out-of-range slot.
pub fn get(page: &[u8], slot: u16) -> Option<&[u8]> {
    if slot >= n_slots(page) {
        return None;
    }
    let (off, len) = slot_at(page, slot);
    if off == DEAD {
        return None;
    }
    Some(&page[usize::from(off)..usize::from(off) + usize::from(len)])
}

/// Delete the record in `slot` (tombstoned; the id is never reused for a
/// *different* record until the slot is recycled by an insert).
/// Returns whether a live record was removed.
pub fn delete(page: &mut [u8], slot: u16) -> bool {
    if slot >= n_slots(page) {
        return false;
    }
    let (off, len) = slot_at(page, slot);
    if off == DEAD {
        return false;
    }
    set_slot(page, slot, DEAD, len); // keep len so usable_free can count it
    let _ = off;
    true
}

/// Replace the record in `slot` with `bytes`. Fails (returns `false`,
/// page unchanged) if the slot is dead or the page cannot host the new
/// version.
pub fn update(page: &mut [u8], slot: u16, bytes: &[u8]) -> bool {
    if slot >= n_slots(page) || slot_at(page, slot).0 == DEAD {
        return false;
    }
    let (off, len) = slot_at(page, slot);
    if bytes.len() <= usize::from(len) {
        // Shrinking in place; the residue is reclaimed at compaction.
        let at = usize::from(off);
        page[at..at + bytes.len()].copy_from_slice(bytes);
        set_slot(page, slot, off, cast::usize_to_u16(bytes.len()));
        return true;
    }
    // Grow: tombstone then re-insert into the same slot if space allows.
    set_slot(page, slot, DEAD, len);
    if usable_free(page) < bytes.len() {
        set_slot(page, slot, off, len); // roll back
        return false;
    }
    if contiguous_free(page) < bytes.len() {
        compact(page);
    }
    let new_start = usize::from(cell_start(page)) - bytes.len();
    page[new_start..new_start + bytes.len()].copy_from_slice(bytes);
    put_u16(page, 6, cast::usize_to_u16(new_start));
    set_slot(
        page,
        slot,
        cast::usize_to_u16(new_start),
        cast::usize_to_u16(bytes.len()),
    );
    true
}

/// Squeeze out dead cells and shrink-residue so the free space is one
/// contiguous run again. Slot numbers are preserved.
pub fn compact(page: &mut [u8]) {
    let n = n_slots(page);
    // Gather live cells, sorted by offset descending (right to left).
    let mut live: Vec<(u16, u16, u16)> = (0..n)
        .filter_map(|s| {
            let (off, len) = slot_at(page, s);
            (off != DEAD).then_some((s, off, len))
        })
        .collect();
    live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
    let mut write_end = PAGE_SIZE;
    for (slot, off, len) in live {
        let new_start = write_end - usize::from(len);
        page.copy_within(
            usize::from(off)..usize::from(off) + usize::from(len),
            new_start,
        );
        set_slot(page, slot, cast::usize_to_u16(new_start), len);
        write_end = new_start;
    }
    put_u16(page, 6, cast::usize_to_u16(write_end));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        init(&mut p);
        p
    }

    #[test]
    fn init_and_capacity() {
        let p = fresh();
        assert!(is_heap(&p));
        assert_eq!(live_records(&p), 0);
        assert_eq!(contiguous_free(&p), PAGE_SIZE - HDR);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = fresh();
        let a = insert(&mut p, b"alpha").unwrap();
        let b = insert(&mut p, b"beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(get(&p, a).unwrap(), b"alpha");
        assert_eq!(get(&p, b).unwrap(), b"beta");
        assert_eq!(live_records(&p), 2);
        assert!(get(&p, 99).is_none());
    }

    #[test]
    fn delete_tombstones_and_recycles() {
        let mut p = fresh();
        let a = insert(&mut p, b"first").unwrap();
        let b = insert(&mut p, b"second").unwrap();
        assert!(delete(&mut p, a));
        assert!(!delete(&mut p, a), "double delete is a no-op");
        assert!(get(&p, a).is_none());
        assert_eq!(get(&p, b).unwrap(), b"second");
        // New insert recycles the dead slot.
        let c = insert(&mut p, b"third").unwrap();
        assert_eq!(c, a);
        assert_eq!(get(&p, c).unwrap(), b"third");
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = fresh();
        let big = vec![7u8; 1000];
        let mut n = 0;
        while insert(&mut p, &big).is_some() {
            n += 1;
        }
        assert_eq!(n, 4, "4 x (1000+4) fits in a 4 KB page; 5 do not");
        assert!(insert(&mut p, &[0u8; 900]).is_none());
        assert!(insert(&mut p, &[0u8; 10]).is_some(), "small ones still fit");
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = fresh();
        let slots: Vec<u16> = (0..4)
            .map(|i| insert(&mut p, &vec![i as u8; 900]).unwrap())
            .collect();
        // Free two interior cells; contiguous space is now too small...
        delete(&mut p, slots[1]);
        delete(&mut p, slots[2]);
        assert!(contiguous_free(&p) < 1800);
        // ...but an insert that needs the dead space triggers compaction.
        let s = insert(&mut p, &vec![9u8; 1700]).unwrap();
        assert_eq!(get(&p, s).unwrap(), &vec![9u8; 1700][..]);
        assert_eq!(get(&p, slots[0]).unwrap(), &vec![0u8; 900][..]);
        assert_eq!(get(&p, slots[3]).unwrap(), &vec![3u8; 900][..]);
    }

    #[test]
    fn update_shrink_grow() {
        let mut p = fresh();
        let s = insert(&mut p, &[1u8; 500]).unwrap();
        let other = insert(&mut p, b"anchor").unwrap();
        assert!(update(&mut p, s, &[2u8; 100]), "shrink in place");
        assert_eq!(get(&p, s).unwrap(), &vec![2u8; 100][..]);
        assert!(update(&mut p, s, &[3u8; 2000]), "grow within page");
        assert_eq!(get(&p, s).unwrap(), &vec![3u8; 2000][..]);
        assert_eq!(get(&p, other).unwrap(), b"anchor");
        // A grow that fits only because the old version's space is
        // reclaimed (page capacity minus header, 2 slots, and the
        // 6-byte anchor record).
        assert!(update(&mut p, s, &[4u8; 4000]));
        assert_eq!(get(&p, s).unwrap(), &vec![4u8; 4000][..]);
        // A truly hopeless grow fails and leaves the record intact.
        assert!(!update(&mut p, s, &[5u8; 4080]));
        assert_eq!(get(&p, s).unwrap(), &vec![4u8; 4000][..]);
        assert_eq!(get(&p, other).unwrap(), b"anchor");
    }

    #[test]
    fn empty_record_is_allowed() {
        let mut p = fresh();
        let s = insert(&mut p, b"").unwrap();
        assert_eq!(get(&p, s).unwrap(), b"");
        assert_eq!(live_records(&p), 1);
    }

    #[test]
    fn compact_preserves_slot_numbers() {
        let mut p = fresh();
        let a = insert(&mut p, b"aaa").unwrap();
        let b = insert(&mut p, b"bbbbbb").unwrap();
        let c = insert(&mut p, b"ccccccccc").unwrap();
        delete(&mut p, b);
        compact(&mut p);
        assert_eq!(get(&p, a).unwrap(), b"aaa");
        assert_eq!(get(&p, c).unwrap(), b"ccccccccc");
        assert!(get(&p, b).is_none());
    }
}
