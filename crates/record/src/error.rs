//! Record-layer errors.

use lobstore_core::LobError;

/// Everything that can go wrong in the record layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// An error from the underlying large-object layer.
    Lob(LobError),
    /// The encoded record does not fit in a heap page.
    RecordTooLarge(usize),
    /// A short field exceeded the 64 KB inline limit.
    ShortFieldTooLarge(usize),
    /// More fields than the format can count.
    TooManyFields(usize),
    /// The record id does not name a live record.
    NoSuchRecord,
    /// `as_short` on a long field or vice versa, or a field index out of
    /// range.
    WrongFieldType,
    /// A heap page or record failed structural validation.
    Corrupt(String),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Lob(e) => write!(f, "large-object error: {e}"),
            RecordError::RecordTooLarge(n) => {
                write!(f, "encoded record of {n} bytes exceeds a heap page")
            }
            RecordError::ShortFieldTooLarge(n) => {
                write!(f, "short field of {n} bytes exceeds the inline limit")
            }
            RecordError::TooManyFields(n) => write!(f, "{n} fields exceed the format limit"),
            RecordError::NoSuchRecord => write!(f, "no such record"),
            RecordError::WrongFieldType => write!(f, "field has the other storage class"),
            RecordError::Corrupt(m) => write!(f, "corrupt record structure: {m}"),
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Lob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LobError> for RecordError {
    fn from(e: LobError) -> Self {
        RecordError::Lob(e)
    }
}

/// Shorthand result type for record-layer operations.
pub type Result<T> = std::result::Result<T, RecordError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: RecordError = LobError::OutOfRange {
            off: 1,
            len: 2,
            size: 0,
        }
        .into();
        assert!(e.to_string().contains("large-object error"));
        assert!(RecordError::NoSuchRecord.to_string().contains("no such"));
    }
}
