//! Record values and their wire format.
//!
//! §2 of the paper: *"The small object holds all short fields along with
//! long field descriptors, each of which describes one of the object's
//! long fields; the long field itself is stored separately from the
//! object."* A descriptor here is the `(storage kind, root page)` pair
//! that [`lobstore_core::open_object`] needs.
//!
//! Wire format of a record (little-endian):
//!
//! ```text
//! [n_fields u16] then per field:
//!   tag 0x00 = short : [len u16][bytes]
//!   tag 0x01 = long  : [kind u8][root u32]
//! ```

use lobstore_core::StorageKind;
use lobstore_simdisk::{bytes as le, cast};

use crate::error::{RecordError, Result};

const TAG_SHORT: u8 = 0x00;
const TAG_LONG: u8 = 0x01;

/// Descriptor of a long field stored outside the record.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LongHandle {
    pub kind: StorageKind,
    pub root_page: u32,
}

/// One stored field of a record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Bytes stored inline in the record.
    Short(Vec<u8>),
    /// Descriptor of an externally stored large object.
    Long(LongHandle),
}

impl Value {
    /// Convenience constructor for inline fields.
    pub fn short(bytes: impl Into<Vec<u8>>) -> Value {
        Value::Short(bytes.into())
    }

    /// The inline bytes, or `WrongFieldType` for a long field.
    pub fn as_short(&self) -> Result<&[u8]> {
        match self {
            Value::Short(b) => Ok(b),
            Value::Long(_) => Err(RecordError::WrongFieldType),
        }
    }

    /// The long-field descriptor, or `WrongFieldType` for a short field.
    pub fn as_long(&self) -> Result<LongHandle> {
        match self {
            Value::Long(h) => Ok(*h),
            Value::Short(_) => Err(RecordError::WrongFieldType),
        }
    }
}

/// Serialize a record.
pub fn encode(fields: &[Value]) -> Result<Vec<u8>> {
    if fields.len() > usize::from(u16::MAX) {
        return Err(RecordError::TooManyFields(fields.len()));
    }
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&cast::usize_to_u16(fields.len()).to_le_bytes());
    for f in fields {
        match f {
            Value::Short(b) => {
                if b.len() > usize::from(u16::MAX) {
                    return Err(RecordError::ShortFieldTooLarge(b.len()));
                }
                out.push(TAG_SHORT);
                out.extend_from_slice(&cast::usize_to_u16(b.len()).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Long(h) => {
                out.push(TAG_LONG);
                out.push(h.kind.as_u8());
                out.extend_from_slice(&h.root_page.to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// Deserialize a record.
pub fn decode(bytes: &[u8]) -> Result<Vec<Value>> {
    let corrupt = |m: &str| RecordError::Corrupt(m.to_string());
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
        if *at + n > bytes.len() {
            return Err(corrupt("record truncated"));
        }
        let s = &bytes[*at..*at + n];
        *at += n;
        Ok(s)
    };
    let n = usize::from(le::le_u16(take(&mut at, 2)?));
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = take(&mut at, 1)?[0];
        match tag {
            TAG_SHORT => {
                let len = usize::from(le::le_u16(take(&mut at, 2)?));
                fields.push(Value::Short(take(&mut at, len)?.to_vec()));
            }
            TAG_LONG => {
                let kind_byte = take(&mut at, 1)?[0];
                let kind = StorageKind::from_u8(kind_byte)
                    .ok_or_else(|| corrupt("unknown long-field storage kind"))?;
                let root = le::le_u32(take(&mut at, 4)?);
                fields.push(Value::Long(LongHandle {
                    kind,
                    root_page: root,
                }));
            }
            _ => return Err(corrupt("unknown field tag")),
        }
    }
    if at != bytes.len() {
        return Err(corrupt("trailing bytes after record"));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_record() {
        let fields = vec![
            Value::short(b"Alexandros Biliris".to_vec()),
            Value::Long(LongHandle {
                kind: StorageKind::Eos,
                root_page: 42,
            }),
            Value::short(Vec::new()),
            Value::Long(LongHandle {
                kind: StorageKind::Starburst,
                root_page: 7,
            }),
        ];
        let bytes = encode(&fields).unwrap();
        assert_eq!(decode(&bytes).unwrap(), fields);
    }

    #[test]
    fn empty_record_roundtrips() {
        let bytes = encode(&[]).unwrap();
        assert_eq!(decode(&bytes).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[1, 0, 9, 9]).is_err(), "bad tag");
        assert!(decode(&[1, 0, 0, 5, 0, b'a']).is_err(), "truncated short");
        let good = encode(&[Value::short(b"x".to_vec())]).unwrap();
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn accessors_enforce_types() {
        let s = Value::short(b"s".to_vec());
        let l = Value::Long(LongHandle {
            kind: StorageKind::Esm,
            root_page: 1,
        });
        assert!(s.as_short().is_ok() && s.as_long().is_err());
        assert!(l.as_long().is_ok() && l.as_short().is_err());
    }

    #[test]
    fn storage_kind_tags_are_stable() {
        for kind in [StorageKind::Esm, StorageKind::Eos, StorageKind::Starburst] {
            assert_eq!(StorageKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(StorageKind::from_u8(0), None);
        assert_eq!(StorageKind::from_u8(9), None);
    }
}
