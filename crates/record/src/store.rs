//! The record store: heap pages of small records whose long fields live
//! in the large-object managers.

use lobstore_core::{open_object, Db, LargeObject, ManagerSpec};
use lobstore_simdisk::{bytes as le, cast, AreaId, PageId, PAGE_SIZE};

use crate::error::{RecordError, Result};
use crate::page;
use crate::schema::{decode, encode, LongHandle, Value};

const STORE_MAGIC: u32 = 0x5245_4353; // "RECS"
const HDR: usize = 8;
const MAX_HEAP_PAGES: usize = (PAGE_SIZE - HDR) / 4;

/// Stable address of a record: heap page + slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RecordId {
    pub page: u32,
    pub slot: u16,
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}:{}", self.page, self.slot)
    }
}

/// Input for one field of a new record.
pub enum FieldInput<'a> {
    /// Store inline in the record.
    Short(&'a [u8]),
    /// Create a fresh large object of the given shape and store its
    /// descriptor.
    Long {
        spec: ManagerSpec,
        content: &'a [u8],
    },
    /// Adopt an already existing large object (the record takes ownership:
    /// deleting the record destroys it).
    Adopt(LongHandle),
}

/// A collection of small records with externally stored long fields —
/// the "person (name, picture, voice)" shape of §2.
pub struct RecordStore {
    root: u32,
}

impl RecordStore {
    /// Create an empty store; its state lives in one META root page.
    pub fn create(db: &mut Db) -> Result<Self> {
        let root = db.alloc_meta_page();
        db.with_new_meta_page(root, |p| {
            p[0..4].copy_from_slice(&STORE_MAGIC.to_le_bytes());
            p[4..6].copy_from_slice(&0u16.to_le_bytes());
        });
        db.pool().flush_page(PageId::new(AreaId::META, root));
        Ok(RecordStore { root })
    }

    /// Re-open a store by its root page.
    pub fn open(db: &mut Db, root: u32) -> Result<Self> {
        let magic = db.with_meta_page(root, |p| le::le_u32(p));
        if magic != STORE_MAGIC {
            return Err(RecordError::Corrupt(format!(
                "page {root} is not a record-store root"
            )));
        }
        Ok(RecordStore { root })
    }

    /// The META page anchoring this store.
    pub fn root_page(&self) -> u32 {
        self.root
    }

    fn heap_pages(&self, db: &mut Db) -> Vec<u32> {
        db.with_meta_page(self.root, |p| {
            let n = usize::from(le::le_u16(&p[4..]));
            (0..n).map(|i| le::le_u32(&p[HDR + i * 4..])).collect()
        })
    }

    fn add_heap_page(&self, db: &mut Db) -> Result<u32> {
        let pages = self.heap_pages(db);
        if pages.len() >= MAX_HEAP_PAGES {
            return Err(RecordError::Corrupt("record store full".into()));
        }
        let new = db.alloc_meta_page();
        db.with_new_meta_page(new, page::init);
        let idx = pages.len();
        db.with_meta_page_mut(self.root, |p| {
            p[4..6].copy_from_slice(&cast::usize_to_u16(idx + 1).to_le_bytes());
            p[HDR + idx * 4..HDR + idx * 4 + 4].copy_from_slice(&new.to_le_bytes());
        });
        Ok(new)
    }

    /// Insert a record, creating its long fields. Long fields created
    /// before a later failure are cleaned up, so errors do not leak
    /// storage.
    pub fn insert(&mut self, db: &mut Db, fields: &[FieldInput<'_>]) -> Result<RecordId> {
        let mut values = Vec::with_capacity(fields.len());
        let mut created: Vec<LongHandle> = Vec::new();
        let build = |db: &mut Db, values: &mut Vec<Value>, created: &mut Vec<LongHandle>| {
            for f in fields {
                match f {
                    FieldInput::Short(b) => values.push(Value::Short(b.to_vec())),
                    FieldInput::Long { spec, content } => {
                        let mut obj = spec.create(db)?;
                        if !content.is_empty() {
                            obj.append(db, content)?;
                            obj.trim(db)?;
                        }
                        let h = LongHandle {
                            kind: obj.kind(),
                            root_page: obj.root_page(),
                        };
                        created.push(h);
                        values.push(Value::Long(h));
                    }
                    FieldInput::Adopt(h) => values.push(Value::Long(*h)),
                }
            }
            Ok(())
        };
        let placed: Result<RecordId> = build(db, &mut values, &mut created)
            .and_then(|()| encode(&values))
            .and_then(|bytes| self.place(db, &bytes));
        match placed {
            Ok(id) => Ok(id),
            Err(e) => {
                // Roll back the long fields we created.
                for h in created {
                    let mut obj = open_object(db, h.kind, h.root_page)?;
                    obj.destroy(db)?;
                }
                Err(e)
            }
        }
    }

    /// Put encoded record bytes on some heap page with room.
    fn place(&mut self, db: &mut Db, bytes: &[u8]) -> Result<RecordId> {
        if bytes.len() > PAGE_SIZE - 32 {
            return Err(RecordError::RecordTooLarge(bytes.len()));
        }
        for hp in self.heap_pages(db) {
            let slot = self.with_heap_page(db, hp, |p| page::insert(p, bytes))?;
            if let Some(slot) = slot {
                return Ok(RecordId { page: hp, slot });
            }
        }
        let hp = self.add_heap_page(db)?;
        let slot = self
            .with_heap_page(db, hp, |p| page::insert(p, bytes))?
            .ok_or(RecordError::RecordTooLarge(bytes.len()))?;
        Ok(RecordId { page: hp, slot })
    }

    /// Fix a heap page for update, run `f`, flush it (record operations
    /// persist at operation end, like leaf flushes in §3.3).
    fn with_heap_page<R>(&self, db: &mut Db, hp: u32, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let out = db.with_meta_page_mut(hp, |p| {
            if !page::is_heap(p) {
                return Err(RecordError::Corrupt(format!(
                    "page {hp} is not a heap page"
                )));
            }
            Ok(f(p))
        })?;
        db.pool().flush_page(PageId::new(AreaId::META, hp));
        Ok(out)
    }

    /// Fetch a record's fields (descriptors for long fields; use
    /// [`Self::read_long`] to reach their bytes).
    pub fn get(&self, db: &mut Db, id: RecordId) -> Result<Vec<Value>> {
        let bytes = db.with_meta_page(id.page, |p| {
            if !page::is_heap(p) {
                return Err(RecordError::NoSuchRecord);
            }
            page::get(p, id.slot)
                .map(<[u8]>::to_vec)
                .ok_or(RecordError::NoSuchRecord)
        })?;
        decode(&bytes)
    }

    /// Open the large object behind a long-field descriptor.
    pub fn read_long(&self, db: &mut Db, handle: LongHandle) -> Result<Box<dyn LargeObject>> {
        Ok(open_object(db, handle.kind, handle.root_page)?)
    }

    /// Replace short field `idx` of an existing record.
    pub fn update_short(
        &mut self,
        db: &mut Db,
        id: RecordId,
        idx: usize,
        bytes: &[u8],
    ) -> Result<()> {
        let mut values = self.get(db, id)?;
        match values.get_mut(idx) {
            Some(Value::Short(b)) => *b = bytes.to_vec(),
            Some(Value::Long(_)) | None => return Err(RecordError::WrongFieldType),
        }
        let encoded = encode(&values)?;
        let ok = self.with_heap_page(db, id.page, |p| page::update(p, id.slot, &encoded))?;
        if !ok {
            return Err(RecordError::RecordTooLarge(encoded.len()));
        }
        Ok(())
    }

    /// Delete a record and destroy the long fields it owns.
    pub fn delete(&mut self, db: &mut Db, id: RecordId) -> Result<()> {
        let values = self.get(db, id)?;
        for v in &values {
            if let Value::Long(h) = v {
                let mut obj = open_object(db, h.kind, h.root_page)?;
                obj.destroy(db)?;
            }
        }
        let existed = self.with_heap_page(db, id.page, |p| page::delete(p, id.slot))?;
        debug_assert!(existed, "get() above succeeded");
        Ok(())
    }

    /// Every live record id, in heap order.
    pub fn scan(&self, db: &mut Db) -> Result<Vec<RecordId>> {
        let mut out = Vec::new();
        for hp in self.heap_pages(db) {
            let slots = db.with_meta_page(hp, |p| {
                let mut v = Vec::new();
                let mut slot = 0u16;
                while still_has_slot(p, slot) {
                    if page::get(p, slot).is_some() {
                        v.push(slot);
                    }
                    slot += 1;
                }
                v
            });
            out.extend(slots.into_iter().map(|slot| RecordId { page: hp, slot }));
        }
        Ok(out)
    }

    /// Number of live records.
    pub fn len(&self, db: &mut Db) -> Result<usize> {
        Ok(self
            .heap_pages(db)
            .into_iter()
            .map(|hp| db.with_meta_page(hp, page::live_records))
            .sum())
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self, db: &mut Db) -> Result<bool> {
        Ok(self.len(db)? == 0)
    }
}

/// Whether the slot directory extends to `slot` (live or tombstoned).
fn still_has_slot(p: &[u8], slot: u16) -> bool {
    slot < le::le_u16(&p[4..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobstore_core::StorageKind;

    fn db() -> Db {
        Db::paper_default()
    }

    #[test]
    fn create_open_roundtrip() {
        let mut db = db();
        let store = RecordStore::create(&mut db).unwrap();
        let again = RecordStore::open(&mut db, store.root_page()).unwrap();
        assert_eq!(again.root_page(), store.root_page());
        assert!(RecordStore::open(&mut db, 12345).is_err());
    }

    #[test]
    fn person_record_of_section_2() {
        // "a person object with attributes name, picture, and voice" —
        // name short, picture and voice as long fields with *different*
        // storage (the §2 motivation for long fields).
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let picture: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let voice: Vec<u8> = (0..80_000).map(|i| (i % 13) as u8).collect();
        let id = store
            .insert(
                &mut db,
                &[
                    FieldInput::Short(b"Alexandros"),
                    FieldInput::Long {
                        spec: ManagerSpec::eos(16),
                        content: &picture,
                    },
                    FieldInput::Long {
                        spec: ManagerSpec::starburst(),
                        content: &voice,
                    },
                ],
            )
            .unwrap();

        let fields = store.get(&mut db, id).unwrap();
        assert_eq!(fields[0].as_short().unwrap(), b"Alexandros");
        let pic = fields[1].as_long().unwrap();
        let voc = fields[2].as_long().unwrap();
        assert_eq!(pic.kind, StorageKind::Eos);
        assert_eq!(voc.kind, StorageKind::Starburst);

        let pic_obj = store.read_long(&mut db, pic).unwrap();
        assert_eq!(pic_obj.snapshot(&db), picture);
        let mut buf = vec![0u8; 1000];
        pic_obj.read(&mut db, 100_000, &mut buf).unwrap();
        assert_eq!(buf[..], picture[100_000..101_000]);

        let voice_obj = store.read_long(&mut db, voc).unwrap();
        assert_eq!(voice_obj.snapshot(&db), voice);
    }

    #[test]
    fn many_records_span_heap_pages() {
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let payload = vec![7u8; 300];
        let ids: Vec<RecordId> = (0..50)
            .map(|i| {
                store
                    .insert(
                        &mut db,
                        &[FieldInput::Short(&payload), FieldInput::Short(&[i as u8])],
                    )
                    .unwrap()
            })
            .collect();
        assert_eq!(store.len(&mut db).unwrap(), 50);
        assert!(
            ids.iter()
                .map(|id| id.page)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1,
            "50 x 300 B records must span multiple heap pages"
        );
        // Every record readable, ids unique.
        for (i, id) in ids.iter().enumerate() {
            let f = store.get(&mut db, *id).unwrap();
            assert_eq!(f[1].as_short().unwrap(), &[i as u8]);
        }
        assert_eq!(store.scan(&mut db).unwrap().len(), 50);
    }

    #[test]
    fn update_short_field() {
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let id = store
            .insert(
                &mut db,
                &[FieldInput::Short(b"old"), FieldInput::Short(b"keep")],
            )
            .unwrap();
        store
            .update_short(&mut db, id, 0, b"brand new value")
            .unwrap();
        let f = store.get(&mut db, id).unwrap();
        assert_eq!(f[0].as_short().unwrap(), b"brand new value");
        assert_eq!(f[1].as_short().unwrap(), b"keep");
        // Updating a long field through update_short is rejected.
        assert!(store.update_short(&mut db, id, 5, b"x").is_err());
    }

    #[test]
    fn delete_destroys_owned_long_fields() {
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let blob = vec![3u8; 100_000];
        let id = store
            .insert(
                &mut db,
                &[
                    FieldInput::Short(b"x"),
                    FieldInput::Long {
                        spec: ManagerSpec::esm(4),
                        content: &blob,
                    },
                ],
            )
            .unwrap();
        assert!(db.leaf_pages_allocated() > 0);
        store.delete(&mut db, id).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 0, "long field storage freed");
        assert!(matches!(
            store.get(&mut db, id),
            Err(RecordError::NoSuchRecord)
        ));
        assert_eq!(store.len(&mut db).unwrap(), 0);
    }

    #[test]
    fn editing_a_long_field_through_the_record() {
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let doc = b"The quick brown fox".to_vec();
        let id = store
            .insert(
                &mut db,
                &[FieldInput::Long {
                    spec: ManagerSpec::eos(4),
                    content: &doc,
                }],
            )
            .unwrap();
        let h = store.get(&mut db, id).unwrap()[0].as_long().unwrap();
        let mut obj = store.read_long(&mut db, h).unwrap();
        obj.insert(&mut db, 4, b"very ").unwrap();
        obj.delete(&mut db, 0, 4).unwrap();
        let again = store.read_long(&mut db, h).unwrap();
        assert_eq!(again.snapshot(&db), b"very quick brown fox");
    }

    #[test]
    fn oversized_record_is_rejected_and_leaks_nothing() {
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let huge = vec![0u8; 5000];
        let blob = vec![1u8; 10_000];
        let before = db.leaf_pages_allocated();
        let err = store.insert(
            &mut db,
            &[
                FieldInput::Long {
                    spec: ManagerSpec::eos(4),
                    content: &blob,
                },
                FieldInput::Short(&huge),
            ],
        );
        assert!(matches!(err, Err(RecordError::RecordTooLarge(_))));
        assert_eq!(
            db.leaf_pages_allocated(),
            before,
            "rolled-back insert must not leak the created long field"
        );
    }

    #[test]
    fn adopted_long_fields_are_shared_until_deleted() {
        let mut db = db();
        let mut store = RecordStore::create(&mut db).unwrap();
        let mut obj = ManagerSpec::eos(4).create(&mut db).unwrap();
        obj.append(&mut db, b"shared content").unwrap();
        let h = LongHandle {
            kind: obj.kind(),
            root_page: obj.root_page(),
        };
        let id = store
            .insert(&mut db, &[FieldInput::Adopt(h), FieldInput::Short(b"meta")])
            .unwrap();
        let got = store.get(&mut db, id).unwrap()[0].as_long().unwrap();
        assert_eq!(got, h);
        assert_eq!(
            store.read_long(&mut db, got).unwrap().snapshot(&db),
            b"shared content"
        );
    }
}
