//! Small records with externally stored **long fields** — the second view
//! of large objects in §2 of Biliris (SIGMOD 1992):
//!
//! > "a person object with attributes name, picture, and voice [...] can
//! > be mapped to a small database object that contains the short field
//! > name and two long field descriptors corresponding to long fields
//! > picture and voice [...] Some applications may prefer the second view
//! > of objects because it is easier to treat the long fields within the
//! > same object in different ways."
//!
//! This crate provides exactly that mapping:
//!
//! * [`RecordStore`] — slotted heap pages of small records, addressed by
//!   stable [`RecordId`]s;
//! * [`Value::Long`] fields hold a [`LongHandle`] descriptor (storage
//!   kind + root page); the bytes live in whichever large-object manager
//!   each field chose — a picture in EOS, a voice track in Starburst, a
//!   frequently edited transcript in ESM, side by side in one record.
//!
//! ```
//! use lobstore_core::{Db, ManagerSpec};
//! use lobstore_record::{FieldInput, RecordStore};
//!
//! let mut db = Db::paper_default();
//! let mut store = RecordStore::create(&mut db).unwrap();
//! let id = store.insert(&mut db, &[
//!     FieldInput::Short(b"Ada"),
//!     FieldInput::Long { spec: ManagerSpec::eos(16), content: b"...portrait bytes..." },
//! ]).unwrap();
//! let fields = store.get(&mut db, id).unwrap();
//! let portrait = store.read_long(&mut db, fields[1].as_long().unwrap()).unwrap();
//! assert_eq!(portrait.snapshot(&db), b"...portrait bytes...");
//! ```
#![forbid(unsafe_code)]

mod error;
/// Pure slotted heap-page primitives (insert/get/delete/compact over a
/// raw page buffer).
pub mod page;
mod schema;
mod store;

pub use error::{RecordError, Result};
pub use schema::{decode, encode, LongHandle, Value};
pub use store::{FieldInput, RecordId, RecordStore};
