//! Deserialized META-node cache: wall-clock memoization of index-page
//! parsing.
//!
//! Every ESM/EOS tree descent and every Starburst descriptor access used
//! to re-parse its META pages (`RootHdr::read` + `Node::read_root`, or
//! `Node::read_page`) on each call — for a streamed scan that is one full
//! root parse per 4 KB chunk. The cache keeps the deserialized form keyed
//! by META page number so repeated descents skip the byte-level decode.
//!
//! **The simulated cost model is untouched.** Cached accessors
//! ([`crate::db::Db::with_meta_node`] / [`crate::db::Db::with_meta_root`])
//! still fix and unfix the page through the buffer pool exactly as the
//! uncached read did, so `IoStats`, traces, and pool hit/miss counters are
//! bit-identical; only the CPU-side parsing is memoized. Consistency is
//! maintained by invalidation at the `Db` META-write funnels
//! (`with_meta_page_mut`, `with_new_meta_page`, `free_meta_page`) and a
//! full clear on [`crate::db::Db::crash_and_reboot`]. Pages written
//! outside the funnels (buddy directory pages, catalog records) are never
//! parsed as nodes, so they cannot go stale here.

use std::collections::HashMap;

use crate::node::{Node, RootHdr};

/// A deserialized META page: a non-root index node, or a root/descriptor
/// page (header plus its entry array — the Starburst descriptor shares
/// the root layout).
pub(crate) enum CachedMeta {
    Node(Node),
    Root(RootHdr, Node),
}

/// Capacity-bounded LRU map from META page number to its parsed form.
///
/// The bound keeps the cache a small constant overlay (a deep paper-scale
/// tree touches ~4 pages per descent; 64 entries cover the hot path of
/// every scheme with room for several live objects).
pub(crate) struct NodeCache {
    map: HashMap<u32, (u64, CachedMeta)>,
    stamp: u64,
    cap: usize,
}

impl NodeCache {
    /// An empty cache holding at most `cap` parsed pages.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "zero-capacity node cache");
        NodeCache {
            map: HashMap::with_capacity(cap),
            stamp: 0,
            cap,
        }
    }

    /// Look up a page, refreshing its LRU stamp on a hit.
    pub fn get(&mut self, page: u32) -> Option<&CachedMeta> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(&page).map(|slot| {
            slot.0 = stamp;
            &slot.1
        })
    }

    /// Insert (or replace) a page's parsed form, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&mut self, page: u32, entry: CachedMeta) {
        if !self.map.contains_key(&page) && self.map.len() >= self.cap {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(page, _)| page)
            {
                self.map.remove(&victim);
                lobstore_obs::counter_add("core.nodecache.evictions", 1);
            }
        }
        self.stamp += 1;
        self.map.insert(page, (self.stamp, entry));
    }

    /// Drop a page's cached form (the page is about to change or be
    /// freed).
    pub fn invalidate(&mut self, page: u32) {
        self.map.remove(&page);
    }

    /// Drop everything (crash/reboot: unflushed pages revert on disk).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Pages currently cached, for verification walks.
    #[cfg(feature = "paranoid")]
    pub fn pages(&self) -> Vec<u32> {
        self.map.keys().copied().collect()
    }

    /// Peek an entry without refreshing its LRU stamp.
    #[cfg(feature = "paranoid")]
    pub fn peek(&self, page: u32) -> Option<&CachedMeta> {
        self.map.get(&page).map(|(_, e)| e)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;

    fn node(ptr: u32) -> CachedMeta {
        CachedMeta::Node(Node {
            level: 0,
            entries: vec![Entry { count: 1, ptr }],
        })
    }

    fn ptr_of(e: &CachedMeta) -> u32 {
        match e {
            CachedMeta::Node(n) => n.entries[0].ptr,
            CachedMeta::Root(..) => unreachable!(),
        }
    }

    #[test]
    fn insert_get_invalidate_roundtrip() {
        let mut c = NodeCache::new(4);
        c.insert(7, node(70));
        assert_eq!(c.get(7).map(ptr_of), Some(70));
        assert!(c.get(8).is_none());
        c.invalidate(7);
        assert!(c.get(7).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = NodeCache::new(3);
        c.insert(1, node(10));
        c.insert(2, node(20));
        c.insert(3, node(30));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1).is_some());
        c.insert(4, node(40));
        assert_eq!(c.len(), 3);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        for page in [1, 3, 4] {
            assert!(c.get(page).is_some(), "page {page} survives");
        }
    }

    #[test]
    fn replacing_an_entry_does_not_evict() {
        let mut c = NodeCache::new(2);
        c.insert(1, node(10));
        c.insert(2, node(20));
        c.insert(1, node(11));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).map(ptr_of), Some(11));
        assert_eq!(c.get(2).map(ptr_of), Some(20));
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut c = NodeCache::new(4);
        c.insert(1, node(10));
        c.insert(2, node(20));
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(c.get(1).is_none());
    }
}
