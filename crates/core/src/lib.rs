//! The three large-object storage structures of Biliris (SIGMOD 1992):
//! **ESM** (EXODUS), **Starburst**, and **EOS**, implemented over a shared
//! substrate of simulated disk, buffer manager, and buddy-system space
//! allocation.
//!
//! # Overview
//!
//! A *large object* is an uninterpreted byte sequence too big for one
//! page. All three managers store it in **segments** — runs of physically
//! adjacent disk pages — and differ in how segments are sized and indexed:
//!
//! * [`EsmObject`]: fixed-size multi-page leaf segments under a positional
//!   B+-tree of `(count, pointer)` pairs (§2.1);
//! * [`StarburstObject`]: a flat descriptor pointing to segments that
//!   double in size up to a maximum, with the last segment trimmed (§2.2);
//! * [`EosObject`]: variable-size segments under the same positional tree,
//!   governed by a segment-size threshold `T` (§2.3).
//!
//! All managers implement [`LargeObject`], whose operations are the ones
//! the paper measures: append, sequential/random byte-range read, byte
//! insert and delete at arbitrary offsets, plus byte-range replace.
//!
//! # Example
//!
//! ```
//! use lobstore_core::{Db, DbConfig, EsmObject, EsmParams, LargeObject};
//!
//! let mut db = Db::new(DbConfig::default());
//! let mut obj = EsmObject::create(&mut db, EsmParams { leaf_pages: 4 }).unwrap();
//! obj.append(&mut db, b"hello, large object world").unwrap();
//! obj.insert(&mut db, 5, b" there").unwrap();
//! let mut buf = vec![0u8; 11];
//! obj.read(&mut db, 0, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello there");
//! ```
#![forbid(unsafe_code)]

mod alloclog;
mod catalog;
mod db;
mod eos;
mod error;
mod esm;
mod health;
mod layout;
mod node;
mod nodecache;
mod object;
mod observe;
/// Deep runtime verification helpers, compiled in by the `paranoid`
/// cargo feature (see the module docs).
#[cfg(feature = "paranoid")]
pub mod paranoid;
mod segdata;
mod shadow;
mod shared;
mod spec;
mod starburst;
mod stream;
mod tree;
mod txn;
mod version;

pub use catalog::{Catalog, CatalogEntry, MAX_NAME};
pub use db::{Db, DbConfig, TreeConfig};
pub use eos::{EosObject, EosParams};
pub use error::{LobError, Result};
pub use esm::{EsmInsertAlgo, EsmObject, EsmParams};
pub use health::{object_health, publish_object_health, HealthSample, ObjectHealth};
pub use lobstore_buddy::{Extent, FragStats};
pub use object::{LargeObject, SegSpan, SegmentInfo, StorageKind, Utilization};
pub use shared::{SharedDb, SharedSnapshotReader};
pub use spec::{open_object, ManagerSpec};
pub use starburst::{StarburstObject, StarburstParams};
pub use stream::{ObjectReader, ObjectWriter};
pub use version::{Snapshot, SnapshotReader};

/// Maximum bytes any single operation may carry, a sanity bound
/// (object sizes themselves are limited only by disk space).
pub const MAX_OP_BYTES: usize = 1 << 30;
