//! The EOS large-object structure (§2.3).
//!
//! EOS generalizes ESM and Starburst: large objects live in a sequence of
//! **variable-size** segments of physically contiguous pages, indexed by
//! the same positional count tree as ESM. Segments have no holes — every
//! page is full except possibly the last page of each segment.
//!
//! * **append** — same growth pattern as Starburst (§4.2): fill the
//!   allocated tail of the rightmost segment in place, then allocate
//!   segments that double in size up to the maximum.
//! * **insert** — the affected segment `S` is split at the insertion
//!   point: its prefix stays exactly where it is, the new bytes go to
//!   their own fresh segment, and the suffix is copied to another fresh
//!   segment (the paper: a 100 KB insert lands in a 25-page leaf even
//!   with a smaller threshold).
//! * **delete** — fully covered segments are freed without any data I/O;
//!   a trimmed suffix costs nothing but a tail free; only a surviving
//!   suffix is copied.
//! * **threshold `T`** — after an update splits segments, adjacent
//!   segments that could be stored together in at most `T` pages are
//!   merged ("it cannot be the case that a number of bytes are kept in
//!   two adjacent segments, one of which has less than T pages, if they
//!   can be stored in one"). Larger `T` ⇒ better utilization and reads,
//!   more reshuffling on updates — the §4.6 trade-off.

use lobstore_buddy::Extent;
use lobstore_simdisk::{cast, pages_for_bytes, AreaId, PageId, PAGE_SIZE, PAGE_SIZE_U64};

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::node::{Entry, RootHdr};
use crate::object::{LargeObject, StorageKind, Utilization};
use crate::segdata::{append_in_place, patch_in_place, read_seg_bytes, write_new_seg};
use crate::shadow::OpCtx;
use crate::tree::PosTree;
use crate::MAX_OP_BYTES;

const EOS_MAGIC: u32 = 0x454F_5331; // "EOS1"
const KIND_EOS: u8 = 2;

/// Creation parameters for an EOS object.
#[derive(Copy, Clone, Debug)]
pub struct EosParams {
    /// Segment-size threshold `T` in pages (§2.3). The paper evaluates
    /// 1, 4, 16, and 64.
    pub threshold_pages: u32,
    /// Maximum segment size in pages (32 MB with 4 KB pages, §3.1).
    pub max_seg_pages: u32,
}

impl Default for EosParams {
    fn default() -> Self {
        EosParams {
            threshold_pages: 4,
            max_seg_pages: 8192,
        }
    }
}

/// Handle to one EOS large object.
#[derive(Debug)]
pub struct EosObject {
    tree: PosTree,
    threshold_pages: u32,
    max_seg_pages: u32,
}

impl EosObject {
    /// Create a new, empty EOS object.
    pub fn create(db: &mut Db, params: EosParams) -> Result<Self> {
        if params.threshold_pages == 0
            || params.max_seg_pages == 0
            || params.max_seg_pages > db.max_segment_pages()
        {
            return Err(LobError::Corrupt(format!(
                "invalid EOS parameters: T={} max={}",
                params.threshold_pages, params.max_seg_pages
            )));
        }
        let root = db.alloc_meta_page();
        let hdr = RootHdr {
            magic: EOS_MAGIC,
            kind: KIND_EOS,
            level: 0,
            n_entries: 0,
            size: 0,
            params: u64::from(params.threshold_pages) | (u64::from(params.max_seg_pages) << 32),
            last_seg_alloc: 0,
            last_seg_ptr: 0,
        };
        db.with_new_meta_page(root, |p| hdr.write(p));
        db.pool.flush_page(PageId::new(AreaId::META, root));
        Ok(EosObject {
            tree: PosTree::new(root),
            threshold_pages: params.threshold_pages,
            max_seg_pages: params.max_seg_pages,
        })
    }

    /// Open an existing EOS object by its root page.
    pub fn open(db: &mut Db, root_page: u32) -> Result<Self> {
        let tree = PosTree::new(root_page);
        let hdr = tree.read_hdr(db);
        if hdr.magic != EOS_MAGIC || hdr.kind != KIND_EOS {
            return Err(LobError::Corrupt(format!(
                "page {root_page} is not an EOS object root"
            )));
        }
        Ok(EosObject {
            tree,
            threshold_pages: cast::to_u32(hdr.params & 0xFFFF_FFFF),
            max_seg_pages: cast::to_u32(hdr.params >> 32),
        })
    }

    /// The segment-size threshold `T`, in pages.
    pub fn threshold_pages(&self) -> u32 {
        self.threshold_pages
    }

    fn max_bytes(&self) -> u64 {
        u64::from(self.max_seg_pages) * PAGE_SIZE_U64
    }

    fn check_range(&self, db: &mut Db, off: u64, len: u64) -> Result<u64> {
        let size = self.tree.read_hdr(db).size;
        if off.checked_add(len).is_none_or(|end| end > size) {
            return Err(LobError::OutOfRange { off, len, size });
        }
        if len > MAX_OP_BYTES as u64 {
            return Err(LobError::OperationTooLarge { len });
        }
        Ok(size)
    }

    /// Pages allocated to the segment behind `entry` (the flagged
    /// rightmost segment may be over-allocated during append growth).
    fn alloc_of(&self, hdr: &RootHdr, entry: &Entry) -> u32 {
        if hdr.last_seg_alloc > 0 && hdr.last_seg_ptr == entry.ptr {
            hdr.last_seg_alloc
        } else {
            pages_for_bytes(entry.count)
        }
    }

    /// Queue the whole segment behind `entry` to be freed when the
    /// operation ends (the old pages must stay intact for recovery,
    /// §3.3), clearing the over-allocation flag if it pointed here.
    fn free_seg(&self, ctx: &mut OpCtx, hdr: &mut RootHdr, entry: &Entry) {
        let alloc = self.alloc_of(hdr, entry);
        ctx.free_extent_later(Extent::new(AreaId::LEAF, entry.ptr, alloc));
        if hdr.last_seg_alloc > 0 && hdr.last_seg_ptr == entry.ptr {
            hdr.last_seg_alloc = 0;
            hdr.last_seg_ptr = 0;
        }
    }

    /// Queue the pages of `entry`'s segment beyond the first `keep_pages`
    /// for release at operation end, clearing the over-allocation flag if
    /// it pointed here.
    fn free_seg_tail(&self, ctx: &mut OpCtx, hdr: &mut RootHdr, entry: &Entry, keep_pages: u32) {
        let alloc = self.alloc_of(hdr, entry);
        if alloc > keep_pages {
            ctx.free_extent_later(Extent::new(
                AreaId::LEAF,
                entry.ptr + keep_pages,
                alloc - keep_pages,
            ));
        }
        if hdr.last_seg_alloc > 0 && hdr.last_seg_ptr == entry.ptr {
            hdr.last_seg_alloc = 0;
            hdr.last_seg_ptr = 0;
        }
    }

    /// Write `bytes` into an exactly sized fresh segment.
    fn new_exact_seg(&self, db: &mut Db, bytes: &[u8]) -> Entry {
        debug_assert!(bytes.len() as u64 <= self.max_bytes());
        let ext = write_new_seg(db, pages_for_bytes(bytes.len() as u64), bytes);
        Entry {
            count: bytes.len() as u64,
            ptr: ext.start,
        }
    }

    /// §2.3 merge rule: two adjacent segments must be merged if their
    /// bytes can be stored in one segment of at most `T` pages.
    fn must_merge(&self, a: u64, b: u64) -> bool {
        pages_for_bytes(a + b) <= self.threshold_pages
    }

    /// Enforce the threshold constraint around the update window
    /// `[lo, hi]` (object offsets): merge adjacent segments whose
    /// boundary falls in the window while the rule demands it.
    fn merge_around(&self, db: &mut Db, ctx: &mut OpCtx, lo: u64, hi: u64) -> Result<()> {
        let mut cur = lo.saturating_sub(1);
        loop {
            let total = self.tree.total(db);
            if total == 0 {
                return Ok(());
            }
            cur = cur.min(total - 1);
            let x = self.tree.try_descend(db, cur)?;
            if x.leaf_end() >= total {
                return Ok(()); // no right neighbour
            }
            if x.leaf_end() > hi.min(total) {
                return Ok(()); // past the update window
            }
            let y = self.tree.try_descend(db, x.leaf_end())?;
            if self.must_merge(x.entry.count, y.entry.count) {
                let mut hdr = self.tree.read_hdr(db);
                let mut buf = read_seg_bytes(db, x.entry.ptr, 0, x.entry.count);
                buf.extend(read_seg_bytes(db, y.entry.ptr, 0, y.entry.count));
                let merged = self.new_exact_seg(db, &buf);
                self.free_seg(ctx, &mut hdr, &x.entry);
                self.free_seg(ctx, &mut hdr, &y.entry);
                self.tree.write_hdr(db, &hdr);
                self.tree.remove_entry(db, ctx, &x.path);
                let again = self.tree.try_descend(db, x.leaf_start)?;
                debug_assert_eq!(again.entry.ptr, y.entry.ptr);
                self.tree.replace_entry(db, ctx, &again.path, vec![merged]);
                // Stay at `cur`: the merged segment may merge again.
            } else {
                cur = x.leaf_end();
            }
        }
    }

    fn bump_size(&self, db: &mut Db, delta: i64) {
        let mut hdr = self.tree.read_hdr(db);
        hdr.size = (hdr.size as i64 + delta) as u64;
        self.tree.write_hdr(db, &hdr);
    }

    /// Rebuild a contiguous region of the object: the leaf entries in
    /// `old` (left to right, starting at object offset `region_start`)
    /// are replaced by segments materialized from `sources`.
    ///
    /// Sources are first grouped by the threshold rule — adjacent pieces
    /// whose combined bytes fit in `T` pages are coalesced — **before**
    /// anything is written, so every output segment is written exactly
    /// once. A singleton [`Src::Seg`] group keeps its segment untouched; a
    /// singleton [`Src::Prefix`] group keeps the split segment's prefix in
    /// place and merely trims its tail. `parents` lists the segments that
    /// contributed `Prefix`/`Tail` pieces; their storage is released here
    /// (fully, or beyond the kept prefix).
    ///
    /// Returns the total byte length of the rebuilt region.
    fn rebuild_region(
        &self,
        db: &mut Db,
        ctx: &mut OpCtx,
        region_start: u64,
        old: &[Entry],
        sources: Vec<Src>,
        parents: &[Entry],
    ) -> Result<u64> {
        debug_assert!(!old.is_empty() && !sources.is_empty());
        let region_len: u64 = sources.iter().map(Src::len).sum();

        // Group adjacent sources while the threshold rule demands it.
        let mut groups: Vec<Vec<Src>> = sources.into_iter().map(|s| vec![s]).collect();
        loop {
            let mut merged_any = false;
            let mut i = 0;
            while i + 1 < groups.len() {
                let a: u64 = groups[i].iter().map(Src::len).sum();
                let b: u64 = groups[i + 1].iter().map(Src::len).sum();
                if self.must_merge(a, b) {
                    let g = groups.remove(i + 1);
                    groups[i].extend(g);
                    merged_any = true;
                } else {
                    i += 1;
                }
            }
            if !merged_any {
                break;
            }
        }

        // Materialize each group: untouched segments and in-place
        // prefixes stay put; everything else is read once and written
        // once into an exactly sized fresh segment.
        let mut hdr = self.tree.read_hdr(db);
        let mut new_entries = Vec::with_capacity(groups.len());
        let mut kept_prefix: Vec<(u32, u64)> = Vec::new(); // (ptr, kept len)
        let mut absorbed_segs: Vec<Entry> = Vec::new();
        for g in groups {
            match g.as_slice() {
                [Src::Seg(e)] => new_entries.push(*e),
                [Src::Prefix { ptr, len }] => {
                    kept_prefix.push((*ptr, *len));
                    new_entries.push(Entry {
                        count: *len,
                        ptr: *ptr,
                    });
                }
                _ => {
                    let total: u64 = g.iter().map(Src::len).sum();
                    let mut buf = Vec::with_capacity(cast::to_usize(total));
                    for s in &g {
                        match s {
                            Src::Seg(e) => {
                                buf.extend(read_seg_bytes(db, e.ptr, 0, e.count));
                                absorbed_segs.push(*e);
                            }
                            Src::Prefix { ptr, len } => {
                                buf.extend(read_seg_bytes(db, *ptr, 0, *len));
                            }
                            Src::Tail { ptr, from, len } => {
                                buf.extend(read_seg_bytes(db, *ptr, *from, *len));
                            }
                            Src::Mem(m) => buf.extend_from_slice(m),
                        }
                    }
                    new_entries.push(self.new_exact_seg(db, &buf));
                }
            }
        }

        // Release superseded storage (reads above are all done).
        for e in absorbed_segs {
            self.free_seg(ctx, &mut hdr, &e);
        }
        for parent in parents {
            match kept_prefix.iter().find(|(ptr, _)| *ptr == parent.ptr) {
                Some(&(_, kept)) => {
                    self.free_seg_tail(ctx, &mut hdr, parent, pages_for_bytes(kept));
                }
                None => self.free_seg(ctx, &mut hdr, parent),
            }
        }
        self.tree.write_hdr(db, &hdr);

        // Splice the tree: drop all but the last old entry, then replace
        // the survivor with the new run (re-descending each time, since
        // structural updates invalidate paths).
        for e in &old[..old.len() - 1] {
            let pos = self.tree.try_descend(db, region_start)?;
            assert_eq!(pos.entry.ptr, e.ptr, "region entry mismatch");
            self.tree.remove_entry(db, ctx, &pos.path);
        }
        let pos = self.tree.try_descend(db, region_start)?;
        assert_eq!(
            pos.entry.ptr,
            old[old.len() - 1].ptr,
            "last region entry mismatch"
        );
        self.tree.replace_entry(db, ctx, &pos.path, new_entries);
        Ok(region_len)
    }

    fn insert_inner(&mut self, db: &mut Db, ctx: &mut OpCtx, off: u64, bytes: &[u8]) -> Result<()> {
        let pos = self.tree.try_descend(db, off)?;
        let p = pos.off_in_leaf;
        let s = pos.entry;
        let total = self.tree.total(db);

        let mut old = Vec::with_capacity(3);
        let mut sources = Vec::with_capacity(5);
        let mut parents = Vec::with_capacity(1);
        let mut region_start = pos.leaf_start;

        // Pull both neighbours into the window so the threshold rule can
        // coalesce across the update site in one pass.
        if pos.leaf_start > 0 {
            let ln = self.tree.try_descend(db, pos.leaf_start - 1)?;
            region_start = ln.leaf_start;
            old.push(ln.entry);
            sources.push(Src::Seg(ln.entry));
        }
        old.push(s);
        if p == 0 {
            // Boundary insert: S itself is relocatable but untouched
            // unless the rule merges it with the new bytes.
            sources.push(Src::Mem(bytes.to_vec()));
            sources.push(Src::Seg(s));
        } else {
            sources.push(Src::Prefix { ptr: s.ptr, len: p });
            sources.push(Src::Mem(bytes.to_vec()));
            sources.push(Src::Tail {
                ptr: s.ptr,
                from: p,
                len: s.count - p,
            });
            parents.push(s);
        }
        if pos.leaf_end() < total {
            let rn = self.tree.try_descend(db, pos.leaf_end())?;
            old.push(rn.entry);
            sources.push(Src::Seg(rn.entry));
        }

        let region_len = self.rebuild_region(db, ctx, region_start, &old, sources, &parents)?;
        self.bump_size(db, bytes.len() as i64);
        // Cascade at the outer boundaries, in the rare case the edge
        // groups still violate the rule against segments outside the
        // window.
        self.merge_around(db, ctx, region_start, region_start + region_len)
    }
}

/// One content source for an EOS region rebuild (see
/// [`EosObject::rebuild_region`]).
enum Src {
    /// An existing whole segment pulled into the window.
    Seg(Entry),
    /// The kept prefix of a split segment — stays physically in place if
    /// it ends up alone in its group.
    Prefix { ptr: u32, len: u64 },
    /// A kept part of a split segment that has to move.
    Tail { ptr: u32, from: u64, len: u64 },
    /// New bytes supplied by the caller.
    Mem(Vec<u8>),
}

impl Src {
    fn len(&self) -> u64 {
        match self {
            Src::Seg(e) => e.count,
            Src::Prefix { len, .. } | Src::Tail { len, .. } => *len,
            Src::Mem(m) => m.len() as u64,
        }
    }
}

#[cfg(feature = "paranoid")]
impl EosObject {
    /// Post-operation deep verification (the `paranoid` feature). The
    /// threshold rule is checked only inside `window`: the merge rule is
    /// an *update* postcondition — append growth legitimately leaves
    /// small doubling segments adjacent (§4.2).
    fn paranoid_verify(&self, db: &mut Db, window: Option<(u64, u64)>) -> Result<()> {
        crate::paranoid::verify_object(self, db)?;
        if let Some((lo, hi)) = window {
            crate::paranoid::verify_eos_threshold(self, db, lo, hi)?;
        }
        Ok(())
    }
}

impl LargeObject for EosObject {
    fn kind(&self) -> StorageKind {
        StorageKind::Eos
    }

    fn root_page(&self) -> u32 {
        self.tree.root_page
    }

    fn size(&self, db: &mut Db) -> u64 {
        self.tree.read_hdr(db).size
    }

    fn append(&mut self, db: &mut Db, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        if bytes.len() > MAX_OP_BYTES {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        let mut ctx = OpCtx::new();
        let mut rem = bytes;

        // Fill the allocated tail of the rightmost segment in place.
        let mut prev_alloc = 0u32;
        if let Some(pos) = self.tree.rightmost(db) {
            let hdr = self.tree.read_hdr(db);
            let alloc = self.alloc_of(&hdr, &pos.entry);
            prev_alloc = alloc;
            let space = u64::from(alloc) * PAGE_SIZE_U64 - pos.entry.count;
            let take = cast::to_usize((rem.len() as u64).min(space));
            if take > 0 {
                append_in_place(db, pos.entry.ptr, pos.entry.count, &rem[..take]);
                self.tree.add_count(db, &mut ctx, &pos.path, take as i64);
                self.bump_size(db, take as i64);
                rem = &rem[take..];
            }
        }

        // Grow with doubling segments, as Starburst does (§4.2).
        while !rem.is_empty() {
            let alloc = if prev_alloc == 0 {
                pages_for_bytes(rem.len() as u64).min(self.max_seg_pages)
            } else {
                (prev_alloc * 2).min(self.max_seg_pages)
            };
            let take = cast::to_usize((rem.len() as u64).min(u64::from(alloc) * PAGE_SIZE_U64));
            let ext = db.alloc_leaf(alloc);
            db.pool.write_direct(AreaId::LEAF, ext.start, &rem[..take]);
            self.tree.append_entry(
                db,
                &mut ctx,
                Entry {
                    count: take as u64,
                    ptr: ext.start,
                },
            );
            let mut hdr = self.tree.read_hdr(db);
            hdr.size += take as u64;
            if alloc > pages_for_bytes(take as u64) {
                hdr.last_seg_alloc = alloc;
                hdr.last_seg_ptr = ext.start;
            } else {
                hdr.last_seg_alloc = 0;
                hdr.last_seg_ptr = 0;
            }
            self.tree.write_hdr(db, &hdr);
            prev_alloc = alloc;
            rem = &rem[take..];
        }
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db, None)?;
        Ok(())
    }

    fn read(&self, db: &mut Db, off: u64, out: &mut [u8]) -> Result<()> {
        self.check_range(db, off, out.len() as u64)?;
        let mut at = off;
        let mut done = 0usize;
        while done < out.len() {
            let pos = self.tree.try_descend(db, at)?;
            let take = cast::to_usize((pos.leaf_end() - at).min((out.len() - done) as u64));
            db.pool.read_segment(
                AreaId::LEAF,
                pos.entry.ptr,
                pos.off_in_leaf,
                &mut out[done..done + take],
            );
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    fn locate(&self, db: &mut Db, off: u64) -> Result<crate::object::SegSpan> {
        self.check_range(db, off, 1)?;
        let pos = self.tree.try_descend(db, off)?;
        Ok(crate::object::SegSpan {
            start: pos.leaf_start,
            bytes: pos.entry.count,
            page: pos.entry.ptr,
        })
    }

    fn insert(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        let size = self.check_range(db, off, 0)?;
        if bytes.is_empty() {
            return Ok(());
        }
        if bytes.len() > MAX_OP_BYTES {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        if off == size {
            return self.append(db, bytes);
        }
        if bytes.len() as u64 > self.max_bytes() {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        let mut ctx = OpCtx::new();
        self.insert_inner(db, &mut ctx, off, bytes)?;
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db, Some((off, off + bytes.len() as u64)))?;
        Ok(())
    }

    fn delete(&mut self, db: &mut Db, off: u64, len: u64) -> Result<()> {
        self.check_range(db, off, len)?;
        if len == 0 {
            return Ok(());
        }
        let mut ctx = OpCtx::new();
        let del_end = off + len;

        // Survey the affected segments at their pre-delete offsets:
        // fully covered segments are freed outright (no data I/O); at
        // most two boundary segments survive partially.
        let mut whole: Vec<Entry> = Vec::new();
        // (entry, original leaf_start, kept prefix p, cut end q):
        // bytes [p, q) of the segment are deleted.
        let mut partials: Vec<(Entry, u64, u64, u64)> = Vec::new();
        let mut cursor = off;
        while cursor < del_end {
            let pos = self.tree.try_descend(db, cursor)?;
            let seg_end = pos.leaf_end();
            if pos.off_in_leaf == 0 && del_end >= seg_end {
                whole.push(pos.entry);
            } else {
                let q = (del_end - pos.leaf_start).min(pos.entry.count);
                partials.push((pos.entry, pos.leaf_start, pos.off_in_leaf, q));
            }
            cursor = seg_end;
        }

        // Phase 1: drop the fully covered segments. They all sit at the
        // same post-removal offset (right after the left partial, or at
        // `off` if there is none).
        // If there is a left-boundary partial (it contains `off` at p>0),
        // the covered segments originally start right after it; otherwise
        // `off` itself is a segment boundary.
        let w_start = match partials.first() {
            Some((e, start, p, _)) if *p > 0 => start + e.count,
            _ => off,
        };
        for e in &whole {
            let pos = self.tree.try_descend(db, w_start)?;
            assert_eq!(pos.entry.ptr, e.ptr, "covered segment mismatch");
            let mut hdr = self.tree.read_hdr(db);
            self.free_seg(&mut ctx, &mut hdr, e);
            self.tree.write_hdr(db, &hdr);
            self.tree.remove_entry(db, &mut ctx, &pos.path);
        }

        // Phase 2: rebuild the boundary region, letting the threshold
        // rule coalesce the surviving pieces with their neighbours.
        if !partials.is_empty() {
            // A left partial (p > 0) keeps its original start; a lone
            // right partial has shifted to `w_start` now that the covered
            // segments before it are gone.
            let anchor = if partials[0].2 > 0 {
                partials[0].1
            } else {
                w_start
            };
            let mut old = Vec::with_capacity(4);
            let mut sources = Vec::with_capacity(6);
            let mut parents = Vec::with_capacity(2);
            let mut region_start = anchor;
            if anchor > 0 {
                let ln = self.tree.try_descend(db, anchor - 1)?;
                region_start = ln.leaf_start;
                old.push(ln.entry);
                sources.push(Src::Seg(ln.entry));
            }
            let mut kept_after = anchor;
            for &(e, _, p, q) in &partials {
                old.push(e);
                if p > 0 {
                    sources.push(Src::Prefix { ptr: e.ptr, len: p });
                }
                if q < e.count {
                    sources.push(Src::Tail {
                        ptr: e.ptr,
                        from: q,
                        len: e.count - q,
                    });
                }
                parents.push(e);
                kept_after += e.count; // counts not yet reduced in tree
            }
            let total = self.tree.total(db);
            if kept_after < total {
                let rn = self.tree.try_descend(db, kept_after)?;
                old.push(rn.entry);
                sources.push(Src::Seg(rn.entry));
            }
            let region_len =
                self.rebuild_region(db, &mut ctx, region_start, &old, sources, &parents)?;
            self.bump_size(db, -(len as i64));
            self.merge_around(db, &mut ctx, region_start, region_start + region_len)?;
        } else {
            // Pure whole-segment delete: the freed gap may have brought
            // two violating segments together.
            self.bump_size(db, -(len as i64));
            self.merge_around(db, &mut ctx, off, off)?;
        }
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db, Some((off, off)))?;
        Ok(())
    }

    fn replace(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        self.check_range(db, off, bytes.len() as u64)?;
        if bytes.is_empty() {
            return Ok(());
        }
        let mut ctx = OpCtx::new();
        let mut at = off;
        let mut done = 0usize;
        while done < bytes.len() {
            let pos = self.tree.try_descend(db, at)?;
            let take = cast::to_usize((pos.leaf_end() - at).min((bytes.len() - done) as u64));
            let s = cast::to_usize(pos.off_in_leaf);
            if db.config().shadowing {
                let mut hdr = self.tree.read_hdr(db);
                let mut content = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
                content[s..s + take].copy_from_slice(&bytes[done..done + take]);
                let e = self.new_exact_seg(db, &content);
                self.free_seg(&mut ctx, &mut hdr, &pos.entry);
                self.tree.write_hdr(db, &hdr);
                self.tree.replace_entry(db, &mut ctx, &pos.path, vec![e]);
            } else {
                patch_in_place(
                    db,
                    pos.entry.ptr,
                    pos.off_in_leaf,
                    &bytes[done..done + take],
                );
            }
            done += take;
            at += take as u64;
        }
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db, None)?;
        Ok(())
    }

    fn trim(&mut self, db: &mut Db) -> Result<()> {
        let mut hdr = self.tree.read_hdr(db);
        if hdr.last_seg_alloc == 0 {
            return Ok(());
        }
        let Some(pos) = self.tree.rightmost(db) else {
            hdr.last_seg_alloc = 0;
            hdr.last_seg_ptr = 0;
            self.tree.write_hdr(db, &hdr);
            return Ok(());
        };
        debug_assert_eq!(pos.entry.ptr, hdr.last_seg_ptr, "flag must track the tail");
        let used = pages_for_bytes(pos.entry.count);
        if hdr.last_seg_alloc > used {
            db.free_leaf(Extent::new(
                AreaId::LEAF,
                pos.entry.ptr + used,
                hdr.last_seg_alloc - used,
            ));
        }
        hdr.last_seg_alloc = 0;
        hdr.last_seg_ptr = 0;
        self.tree.write_hdr(db, &hdr);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db, None)?;
        Ok(())
    }

    fn destroy(&mut self, db: &mut Db) -> Result<()> {
        let hdr = self.tree.read_hdr(db);
        for (_, e) in self.tree.collect_leaves_costed(db) {
            let alloc = self.alloc_of(&hdr, &e);
            db.free_leaf(Extent::new(AreaId::LEAF, e.ptr, alloc));
        }
        for page in self.tree.internal_pages(db) {
            db.free_meta_page(page);
        }
        db.free_meta_page(self.tree.root_page);
        Ok(())
    }

    fn utilization(&self, db: &Db) -> Utilization {
        let page = db.peek_meta(self.tree.root_page);
        let hdr = RootHdr::read(&page[..]);
        let leaves = self.tree.collect_leaves(db);
        let mut data_pages = 0u64;
        for (_, e) in &leaves {
            data_pages += u64::from(if hdr.last_seg_alloc > 0 && hdr.last_seg_ptr == e.ptr {
                hdr.last_seg_alloc
            } else {
                pages_for_bytes(e.count)
            });
        }
        Utilization {
            object_bytes: hdr.size,
            data_pages,
            index_pages: self.tree.index_page_count(db),
        }
    }

    fn segments(&self, db: &Db) -> Vec<crate::object::SegmentInfo> {
        let page = db.peek_meta(self.tree.root_page);
        let hdr = RootHdr::read(&page[..]);
        self.tree
            .collect_leaves(db)
            .into_iter()
            .map(|(offset, e)| crate::object::SegmentInfo {
                offset,
                start_page: e.ptr,
                bytes: e.count,
                pages: self.alloc_of(&hdr, &e),
            })
            .collect()
    }

    fn index_page_numbers(&self, db: &Db) -> Vec<u32> {
        let mut out = vec![self.tree.root_page];
        out.extend(self.tree.internal_pages(db));
        out
    }

    fn check_invariants(&self, db: &Db) -> Result<()> {
        self.tree.check_invariants(db)?;
        let page = db.peek_meta(self.tree.root_page);
        let hdr = RootHdr::read(&page[..]);
        let leaves = self.tree.collect_leaves(db);
        for (off, e) in &leaves {
            if e.count == 0 {
                return Err(LobError::InvariantViolated(format!(
                    "empty segment at {off}"
                )));
            }
            if e.count > self.max_bytes() {
                return Err(LobError::InvariantViolated(format!(
                    "segment at {off} exceeds max size"
                )));
            }
        }
        if hdr.last_seg_alloc > 0 {
            let last = leaves.last().ok_or_else(|| {
                LobError::InvariantViolated("over-allocation flag on empty object".into())
            })?;
            if last.1.ptr != hdr.last_seg_ptr {
                return Err(LobError::InvariantViolated(
                    "over-allocation flag does not point at the rightmost segment".into(),
                ));
            }
            if pages_for_bytes(last.1.count) > hdr.last_seg_alloc {
                return Err(LobError::InvariantViolated(
                    "rightmost segment uses more pages than allocated".into(),
                ));
            }
        }
        Ok(())
    }

    fn snapshot(&self, db: &Db) -> Vec<u8> {
        let leaves = self.tree.collect_leaves(db);
        let mut out = Vec::with_capacity(leaves.iter().map(|(_, e)| e.count as usize).sum());
        for (_, e) in leaves {
            let pages = pages_for_bytes(e.count);
            let mut rem = cast::to_usize(e.count);
            for i in 0..pages {
                let page = db.peek_leaf_page(e.ptr + i);
                let take = rem.min(PAGE_SIZE);
                out.extend_from_slice(&page[..take]);
                rem -= take;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn db() -> Db {
        Db::paper_default()
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 41 + seed as usize) % 247) as u8)
            .collect()
    }

    fn make(db: &mut Db, t: u32) -> EosObject {
        EosObject::create(
            db,
            EosParams {
                threshold_pages: t,
                max_seg_pages: 8192,
            },
        )
        .unwrap()
    }

    /// Segment page counts, left to right (allocation-aware).
    fn seg_pages(db: &Db, obj: &EosObject) -> Vec<u32> {
        let page = db.peek_meta(obj.tree.root_page);
        let hdr = RootHdr::read(&page[..]);
        obj.tree
            .collect_leaves(db)
            .iter()
            .map(|(_, e)| obj.alloc_of(&hdr, e))
            .collect()
    }

    #[test]
    fn create_open_roundtrip() {
        let mut db = db();
        let obj = make(&mut db, 16);
        let again = EosObject::open(&mut db, obj.root_page()).unwrap();
        assert_eq!(again.threshold_pages(), 16);
        assert_eq!(again.max_seg_pages, 8192);
    }

    #[test]
    fn appends_double_like_starburst() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        let mut model = Vec::new();
        for i in 0..20 {
            let c = pattern(3 * 1024, i);
            obj.append(&mut db, &c).unwrap();
            model.extend_from_slice(&c);
            obj.check_invariants(&db).unwrap();
        }
        assert_eq!(obj.snapshot(&db), model);
        let pages = seg_pages(&db, &obj);
        assert_eq!(&pages[..4], &[1, 2, 4, 8], "doubling growth: {pages:?}");
    }

    #[test]
    fn paper_figure_3_shape() {
        // §2.3: a 1830-byte object in segments after updates; a 470-byte
        // range occupies ceil(470/100)=5 pages in the paper's 100-byte
        // pages. Here: build 1830*41 bytes and check counts stay exact.
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, &pattern(75_030, 1)).unwrap();
        obj.trim(&mut db).unwrap();
        let u = obj.utilization(&db);
        assert_eq!(u.object_bytes, 75_030);
        assert_eq!(u.data_pages, pages_for_bytes(75_030) as u64);
    }

    #[test]
    fn trim_releases_overallocation() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        obj.append(&mut db, &pattern(3 * 1024, 1)).unwrap();
        obj.append(&mut db, &pattern(3 * 1024, 2)).unwrap();
        assert!(db.leaf_pages_allocated() > 2);
        obj.trim(&mut db).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 2);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn insert_at_boundary_keeps_segment_untouched() {
        let mut db = db();
        let mut obj = make(&mut db, 1); // T=1: no merging
        let a = pattern(8192, 1);
        obj.append(&mut db, &a).unwrap();
        obj.trim(&mut db).unwrap();
        db.reset_io_stats();
        let ins = pattern(20_000, 2);
        obj.insert(&mut db, 0, &ins).unwrap();
        // Only the new 5-page segment is written; nothing is read. The
        // root is updated in place and not flushed (§4.2).
        let s = db.io_stats();
        assert_eq!(s.pages_read, 0, "{s}");
        assert_eq!(s.pages_written, 5, "just the new segment's data pages: {s}");
        assert_eq!(s.write_calls, 1, "one sequential write: {s}");
        let mut model = a.clone();
        model.splice(0..0, ins.iter().copied());
        assert_eq!(obj.snapshot(&db), model);
    }

    #[test]
    fn insert_mid_segment_splits_it() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        let base = pattern(40_000, 1);
        obj.append(&mut db, &base).unwrap();
        obj.trim(&mut db).unwrap();
        let ins = pattern(100_000, 2);
        obj.insert(&mut db, 10_000, &ins).unwrap();
        let mut model = base.clone();
        model.splice(10_000..10_000, ins.iter().copied());
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
        // §4.4.2: the 100K insert lives in its own 25-page segment even
        // though T=1.
        let pages = seg_pages(&db, &obj);
        assert!(pages.contains(&25), "expected a 25-page segment: {pages:?}");
    }

    #[test]
    fn threshold_merges_small_pieces() {
        let mut db = db();
        let mut obj = make(&mut db, 4); // merge up to 4 pages
        obj.append(&mut db, &pattern(16_384, 1)).unwrap(); // 4 pages
        obj.trim(&mut db).unwrap();
        // Tiny insert in the middle: A + N + B would be 3 pieces, but with
        // T=4 they must re-merge into one ≤4-page segment... total is
        // 16384+100 bytes → 5 pages > 4, so pieces merge pairwise only
        // while they fit.
        obj.insert(&mut db, 8_000, &pattern(100, 2)).unwrap();
        obj.check_invariants(&db).unwrap();
        let pages = seg_pages(&db, &obj);
        // No adjacent pair may fit in T pages.
        let leaves = obj.tree.collect_leaves(&db);
        for w in leaves.windows(2) {
            assert!(
                !obj.must_merge(w[0].1.count, w[1].1.count),
                "unmerged pair: {pages:?}"
            );
        }
    }

    #[test]
    fn big_threshold_rebuilds_one_segment() {
        let mut db = db();
        let mut obj = make(&mut db, 64);
        obj.append(&mut db, &pattern(40_000, 1)).unwrap(); // 10 pages
        obj.trim(&mut db).unwrap();
        obj.insert(&mut db, 20_000, &pattern(100, 2)).unwrap();
        obj.check_invariants(&db).unwrap();
        let pages = seg_pages(&db, &obj);
        assert_eq!(pages.len(), 1, "T=64 re-merges everything: {pages:?}");
        // 40,100 bytes on 10 data pages + 1 root page.
        let u = obj.utilization(&db);
        assert_eq!(u.data_pages, 10);
        assert!(u.ratio() > 0.85, "ratio {}", u.ratio());
    }

    #[test]
    fn delete_suffix_is_free() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        let base = pattern(40_000, 3);
        obj.append(&mut db, &base).unwrap();
        obj.trim(&mut db).unwrap();
        db.reset_io_stats();
        obj.delete(&mut db, 20_000, 20_000).unwrap();
        let s = db.io_stats();
        assert_eq!(
            s.pages_read + s.pages_written,
            0,
            "suffix trim is free: {s}"
        );
        assert_eq!(obj.snapshot(&db), base[..20_000]);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn delete_whole_segments_is_free() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        // Three exact segments via boundary inserts.
        obj.append(&mut db, &pattern(8192, 1)).unwrap();
        obj.trim(&mut db).unwrap();
        obj.insert(&mut db, 0, &pattern(8192, 2)).unwrap();
        obj.insert(&mut db, 0, &pattern(8192, 3)).unwrap();
        db.reset_io_stats();
        obj.delete(&mut db, 8192, 8192).unwrap();
        let s = db.io_stats();
        assert_eq!(s.pages_read + s.pages_written, 0, "{s}");
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.size(&mut db), 2 * 8192);
    }

    #[test]
    fn boundary_aligned_delete_over_whole_segments() {
        // Regression: a delete that starts exactly at a segment boundary,
        // covers whole segments, and ends inside a later one. The right
        // partial shifts left as covered segments are dropped; the region
        // rebuild must anchor at its post-removal position.
        let mut db = db();
        let mut obj = make(&mut db, 1); // T=1: segments stay separate
                                        // Three exact 2-page segments via boundary inserts.
        let mut model = Vec::new();
        for i in 0..4u8 {
            let chunk = pattern(8192, i);
            obj.insert(&mut db, 0, &chunk).unwrap();
            model.splice(0..0, chunk.iter().copied());
        }
        obj.check_invariants(&db).unwrap();
        // Delete from the start of segment 1 through the middle of
        // segment 3: boundary-aligned start, one whole segment covered.
        obj.delete(&mut db, 8192, 8192 + 4000).unwrap();
        model.drain(8192..8192 + 8192 + 4000);
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.size(&mut db), model.len() as u64);
    }

    #[test]
    fn delete_across_segments_matches_model() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        let mut model = pattern(200_000, 7);
        obj.append(&mut db, &model).unwrap();
        obj.trim(&mut db).unwrap();
        obj.delete(&mut db, 30_000, 100_000).unwrap();
        model.drain(30_000..130_000);
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn delete_everything_frees_all_pages() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        obj.append(&mut db, &pattern(100_000, 1)).unwrap();
        obj.delete(&mut db, 0, 100_000).unwrap();
        assert_eq!(obj.size(&mut db), 0);
        assert_eq!(db.leaf_pages_allocated(), 0);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn replace_matches_model() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        let mut model = pattern(60_000, 1);
        obj.append(&mut db, &model).unwrap();
        let patch = pattern(9_000, 8);
        obj.replace(&mut db, 30_000, &patch).unwrap();
        model[30_000..39_000].copy_from_slice(&patch);
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn destroy_frees_everything() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        obj.append(&mut db, &pattern(500_000, 2)).unwrap();
        obj.insert(&mut db, 1000, &pattern(5_000, 3)).unwrap();
        obj.destroy(&mut db).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 0);
        assert_eq!(db.meta_pages_allocated(), 0);
    }

    #[test]
    fn random_ops_match_reference_model() {
        for t in [1u32, 4, 16] {
            let mut db = db();
            let mut obj = make(&mut db, t);
            let mut model: Vec<u8> = Vec::new();
            let mut rng = StdRng::seed_from_u64(1234 + u64::from(t));
            for step in 0..120 {
                let c = rng.gen_range(0..10);
                if model.is_empty() || c < 4 {
                    let chunk = pattern(rng.gen_range(1..25_000), rng.gen());
                    let off = rng.gen_range(0..=model.len());
                    obj.insert(&mut db, off as u64, &chunk).unwrap();
                    model.splice(off..off, chunk.iter().copied());
                } else if c < 7 {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(20_000));
                    obj.delete(&mut db, off as u64, len as u64).unwrap();
                    model.drain(off..off + len);
                } else if c < 9 {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(10_000));
                    let mut out = vec![0u8; len];
                    obj.read(&mut db, off as u64, &mut out).unwrap();
                    assert_eq!(out[..], model[off..off + len], "read @{step} T={t}");
                } else {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(8_000));
                    let patch = pattern(len, rng.gen());
                    obj.replace(&mut db, off as u64, &patch).unwrap();
                    model[off..off + len].copy_from_slice(&patch);
                }
                obj.check_invariants(&db)
                    .unwrap_or_else(|e| panic!("T={t} step={step}: {e}"));
                assert_eq!(obj.snapshot(&db), model, "content @{step} T={t}");
            }
        }
    }

    #[test]
    fn out_of_range_errors() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        obj.append(&mut db, b"hello").unwrap();
        let mut out = [0u8; 2];
        assert!(obj.read(&mut db, 5, &mut out).is_err());
        assert!(obj.insert(&mut db, 7, b"x").is_err());
        assert!(obj.delete(&mut db, 2, 9).is_err());
    }
}
