//! Deep runtime verification (the `paranoid` cargo feature).
//!
//! When the feature is enabled, every mutating operation of the three
//! managers re-verifies its object before returning: the structure's own
//! invariants ([`crate::LargeObject::check_invariants`]: count-tree
//! separator sums, bounds, and balance), physical disjointness of the
//! object's segments, the EOS threshold rule around the update window
//! (§2.3), the Starburst descriptor shape (§2.2: only the last extent
//! trimmed, extent-size ceiling), and the buddy allocators' bitmap /
//! bookkeeping consistency. A failed check surfaces as
//! [`LobError::InvariantViolated`] from the operation itself, so fuzzing
//! and stress tests fail at the operation that corrupted state rather
//! than at some later read.
//!
//! The checks read pages through the cost-free peek path, so enabling
//! the feature does not perturb the simulated I/O measurements — only
//! wall-clock time.

use lobstore_simdisk::{pages_for_bytes, PAGE_SIZE_U64};

use crate::db::Db;
use crate::eos::EosObject;
use crate::error::{LobError, Result};
use crate::object::LargeObject;
use crate::starburst::StarburstObject;

/// Structure-independent deep checks: the object's own invariants plus
/// physical disjointness of its segment extents (no two segments may
/// share a disk page, including over-allocated tails).
pub fn verify_segments(obj: &dyn LargeObject, db: &Db) -> Result<()> {
    obj.check_invariants(db)?;
    let mut segs = obj.segments(db);
    segs.sort_by_key(|s| s.start_page);
    for w in segs.windows(2) {
        if w[0].start_page + w[0].pages > w[1].start_page {
            return Err(LobError::InvariantViolated(format!(
                "segments alias: pages {}+{} overlap {}+{}",
                w[0].start_page, w[0].pages, w[1].start_page, w[1].pages
            )));
        }
    }
    Ok(())
}

/// §2.3 threshold rule over the update window `[lo, hi]` (object byte
/// offsets): no segment boundary inside the window may separate two
/// adjacent segments whose combined bytes fit in `T` pages. Only the
/// window is checked because append growth legitimately leaves small
/// doubling segments adjacent — the rule is an *update* postcondition.
pub fn verify_eos_threshold(obj: &EosObject, db: &Db, lo: u64, hi: u64) -> Result<()> {
    let segs = obj.segments(db); // ascending object offsets
    let t = obj.threshold_pages();
    for w in segs.windows(2) {
        let boundary = w[1].offset;
        if boundary < lo || boundary > hi {
            continue;
        }
        if pages_for_bytes(w[0].bytes + w[1].bytes) <= t {
            return Err(LobError::InvariantViolated(format!(
                "threshold rule violated at offset {boundary}: adjacent segments of {} and {} \
                 bytes fit in {t} pages",
                w[0].bytes, w[1].bytes
            )));
        }
    }
    Ok(())
}

/// §2.2 descriptor shape: every segment but the last holds an exact
/// page multiple (only the last extent may be trimmed), and no segment
/// exceeds the configured MaxSeg extent ceiling.
///
/// Monotone doubling growth is deliberately *not* asserted: it only
/// holds for append-only histories. A §3.5 tail rewrite ends with an
/// exact-size extent that may be smaller than its predecessor, and a
/// later append freezes that extent mid-descriptor — e.g. sizes
/// `[14, 11, 22]` pages are a legal outcome of insert-then-append.
pub fn verify_starburst_descriptor(obj: &StarburstObject, db: &Db) -> Result<()> {
    let segs = obj.segments(db);
    for (i, s) in segs.iter().enumerate() {
        if i + 1 < segs.len() && s.bytes % PAGE_SIZE_U64 != 0 {
            return Err(LobError::InvariantViolated(format!(
                "non-last segment {i} holds {} bytes — only the last extent may be trimmed",
                s.bytes
            )));
        }
        let pages = pages_for_bytes(s.bytes);
        if pages > obj.max_seg_pages() {
            return Err(LobError::InvariantViolated(format!(
                "segment {i} uses {pages} pages, above the {}-page extent ceiling",
                obj.max_seg_pages()
            )));
        }
    }
    Ok(())
}

/// Everything a manager re-checks after a mutating operation, bundled:
/// object-level checks, both buddy allocators, the MVCC version chain,
/// and (when configured) an arithmetic replay of the allocation log
/// against the live allocator maps (DESIGN.md §16).
pub fn verify_object(obj: &dyn LargeObject, db: &mut Db) -> Result<()> {
    verify_segments(obj, db)?;
    db.paranoid_verify_node_cache()?;
    db.paranoid_verify_allocators()?;
    db.paranoid_verify_versions()?;
    db.verify_alloc_log()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::node::ROOT_ENTRIES_OFF;
    use crate::{EosParams, EsmObject, EsmParams, StarburstParams};

    fn db() -> Db {
        Db::new(DbConfig::default())
    }

    #[test]
    fn healthy_objects_verify_clean() {
        let mut db = db();
        let mut esm = EsmObject::create(&mut db, EsmParams { leaf_pages: 4 }).unwrap();
        let mut eos = EosObject::create(&mut db, EosParams::default()).unwrap();
        let mut star = StarburstObject::create(&mut db, StarburstParams::default()).unwrap();
        for obj in [
            &mut esm as &mut dyn LargeObject,
            &mut eos as &mut dyn LargeObject,
            &mut star as &mut dyn LargeObject,
        ] {
            obj.append(&mut db, &vec![9u8; 60_000]).unwrap();
            obj.insert(&mut db, 10_000, &vec![1u8; 5_000]).unwrap();
            obj.delete(&mut db, 20_000, 7_000).unwrap();
            verify_object(obj, &mut db).unwrap();
        }
        verify_starburst_descriptor(&star, &db).unwrap();
    }

    // Seeded violation, ESM / count tree: desynchronize the stored object
    // size from the tree's separator totals.
    #[test]
    fn esm_detects_size_total_mismatch() {
        let mut db = db();
        let mut obj = EsmObject::create(&mut db, EsmParams { leaf_pages: 4 }).unwrap();
        obj.append(&mut db, &vec![3u8; 50_000]).unwrap();
        let root = obj.root_page();
        // hdr.size lives at bytes 8..16 of the root page.
        db.with_meta_page_mut(root, |p| p[8] = p[8].wrapping_add(1));
        let err = verify_segments(&obj, &db).unwrap_err();
        assert!(matches!(err, LobError::InvariantViolated(_)), "{err}");
    }

    // Seeded violation, ESM: alias two leaves onto the same disk pages.
    #[test]
    fn esm_detects_aliased_leaves() {
        let mut db = db();
        let mut obj = EsmObject::create(&mut db, EsmParams { leaf_pages: 4 }).unwrap();
        obj.append(&mut db, &vec![3u8; 100_000]).unwrap();
        let root = obj.root_page();
        // Copy leaf 0's pointer over leaf 1's (each root entry is a
        // (count u32, ptr u32) pair starting at ROOT_ENTRIES_OFF).
        db.with_meta_page_mut(root, |p| {
            let first_ptr_at = ROOT_ENTRIES_OFF + 4;
            let second_ptr_at = ROOT_ENTRIES_OFF + 8 + 4;
            let ptr0: [u8; 4] = [
                p[first_ptr_at],
                p[first_ptr_at + 1],
                p[first_ptr_at + 2],
                p[first_ptr_at + 3],
            ];
            p[second_ptr_at..second_ptr_at + 4].copy_from_slice(&ptr0);
        });
        let err = verify_segments(&obj, &db).unwrap_err();
        assert!(err.to_string().contains("alias"), "{err}");
    }

    // Seeded violation, EOS: raise the threshold parameter on disk after
    // segments were laid out for a smaller T — pairs that were legal
    // under the old T now violate the merge rule.
    #[test]
    fn eos_detects_threshold_violation() {
        let mut db = db();
        let mut obj = EosObject::create(
            &mut db,
            EosParams {
                threshold_pages: 1,
                max_seg_pages: 64,
            },
        )
        .unwrap();
        // Two adjacent multi-page segments (T=1 never merges them).
        obj.append(&mut db, &vec![5u8; 3 * 4096]).unwrap();
        obj.insert(&mut db, 4096, &vec![6u8; 2 * 4096]).unwrap();
        let size = obj.size(&mut db);
        verify_eos_threshold(&obj, &db, 0, size).unwrap();
        // Tamper: rewrite the params word (bytes 16..24: T | max << 32)
        // to claim T=64, then reopen.
        let root = obj.root_page();
        db.with_meta_page_mut(root, |p| {
            let params = 64u64 | (64u64 << 32);
            p[16..24].copy_from_slice(&params.to_le_bytes());
        });
        let obj = EosObject::open(&mut db, root).unwrap();
        let err = verify_eos_threshold(&obj, &db, 0, size).unwrap_err();
        assert!(err.to_string().contains("threshold rule"), "{err}");
    }

    // Regression: a tail rewrite (insert) ends with an exact-size extent
    // that can be smaller than its predecessor; a later append freezes
    // it mid-descriptor. That shape is legal and must verify clean —
    // only append-only histories grow monotonically.
    #[test]
    fn starburst_accepts_post_rewrite_append_shape() {
        let mut db = db();
        let mut obj = StarburstObject::create(&mut db, StarburstParams::default()).unwrap();
        obj.append(&mut db, &vec![7u8; 56_000]).unwrap();
        obj.insert(&mut db, 50_000, &vec![8u8; 9_000]).unwrap();
        obj.append(&mut db, &vec![9u8; 120_000]).unwrap();
        verify_starburst_descriptor(&obj, &db).unwrap();
        verify_object(&obj, &mut db).unwrap();
    }

    // Seeded violation, Starburst: lower the on-disk MaxSeg parameter
    // after large extents were laid out — segments that were legal under
    // the old ceiling now exceed it.
    #[test]
    fn starburst_detects_oversized_segment() {
        let mut db = db();
        let mut obj = StarburstObject::create(&mut db, StarburstParams::default()).unwrap();
        obj.append(&mut db, &vec![4u8; 80_000]).unwrap();
        verify_starburst_descriptor(&obj, &db).unwrap();
        let root = obj.root_page();
        db.with_meta_page_mut(root, |p| {
            // params word (bytes 16..24): max_seg_pages | known << 32.
            let params = 2u64;
            p[16..24].copy_from_slice(&params.to_le_bytes());
        });
        let obj = StarburstObject::open(&mut db, root).unwrap();
        let err = verify_starburst_descriptor(&obj, &db).unwrap_err();
        assert!(err.to_string().contains("extent ceiling"), "{err}");
    }

    // Seeded violation, Starburst: trim a byte off a non-last segment in
    // the descriptor (keeping the size sum consistent so only the deep
    // shape check can notice).
    #[test]
    fn starburst_detects_trimmed_interior_segment() {
        let mut db = db();
        let mut obj = StarburstObject::create(&mut db, StarburstParams::default()).unwrap();
        // Two appends: the second one outgrows the first segment, so the
        // descriptor ends up with several doubling entries.
        obj.append(&mut db, &vec![7u8; 4096]).unwrap();
        obj.append(&mut db, &vec![7u8; 30_000]).unwrap();
        assert!(obj.segments(&db).len() >= 2, "need at least two segments");
        verify_starburst_descriptor(&obj, &db).unwrap();
        let root = obj.root_page();
        db.with_meta_page_mut(root, |p| {
            // Entry 0 count (u32) at ROOT_ENTRIES_OFF; knock one byte off
            // it and off hdr.size (u64 at 8) to keep total == size.
            let c = u32::from_le_bytes([
                p[ROOT_ENTRIES_OFF],
                p[ROOT_ENTRIES_OFF + 1],
                p[ROOT_ENTRIES_OFF + 2],
                p[ROOT_ENTRIES_OFF + 3],
            ]);
            p[ROOT_ENTRIES_OFF..ROOT_ENTRIES_OFF + 4].copy_from_slice(&(c - 1).to_le_bytes());
            let s = u64::from_le_bytes([p[8], p[9], p[10], p[11], p[12], p[13], p[14], p[15]]);
            p[8..16].copy_from_slice(&(s - 1).to_le_bytes());
        });
        let err = verify_starburst_descriptor(&obj, &db).unwrap_err();
        assert!(err.to_string().contains("only the last extent"), "{err}");
    }

    // The wired checks fire from inside the operations themselves: after
    // on-disk tampering, the next mutating op must return the violation
    // instead of silently building on corrupt state.
    #[test]
    fn operations_surface_violations() {
        let mut db = db();
        let mut obj = EsmObject::create(&mut db, EsmParams { leaf_pages: 4 }).unwrap();
        obj.append(&mut db, &vec![3u8; 50_000]).unwrap();
        let root = obj.root_page();
        db.with_meta_page_mut(root, |p| p[8] = p[8].wrapping_add(1));
        let err = obj.append(&mut db, b"more").unwrap_err();
        assert!(matches!(err, LobError::InvariantViolated(_)), "{err}");
    }
}
