//! Declarative manager selection, so bench binaries and examples can
//! sweep configurations uniformly.

use crate::db::Db;
use crate::eos::{EosObject, EosParams};
use crate::error::Result;
use crate::esm::{EsmObject, EsmParams};
use crate::object::{LargeObject, StorageKind};
use crate::observe::{observe_create, observe_open};
use crate::starburst::{StarburstObject, StarburstParams};

/// Which manager to instantiate, with its paper-relevant parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ManagerSpec {
    /// ESM with a fixed leaf size in pages (1, 4, 16, 64 in the paper).
    Esm { leaf_pages: u32 },
    /// Starburst with a maximum segment size in pages.
    Starburst {
        max_seg_pages: u32,
        known_size: bool,
    },
    /// EOS with a segment-size threshold and maximum segment size.
    Eos {
        threshold_pages: u32,
        max_seg_pages: u32,
    },
}

impl ManagerSpec {
    /// The paper's default Starburst configuration (32 MB max segments).
    pub fn starburst() -> Self {
        ManagerSpec::Starburst {
            max_seg_pages: 8192,
            known_size: false,
        }
    }

    /// The paper's EOS configuration for threshold `t`.
    pub fn eos(t: u32) -> Self {
        ManagerSpec::Eos {
            threshold_pages: t,
            max_seg_pages: 8192,
        }
    }

    /// The paper's ESM configuration for a leaf of `pages` pages.
    pub fn esm(pages: u32) -> Self {
        ManagerSpec::Esm { leaf_pages: pages }
    }

    /// The [`StorageKind`] this spec instantiates.
    pub fn kind(&self) -> StorageKind {
        match *self {
            ManagerSpec::Esm { .. } => StorageKind::Esm,
            ManagerSpec::Starburst { .. } => StorageKind::Starburst,
            ManagerSpec::Eos { .. } => StorageKind::Eos,
        }
    }

    /// Instantiate a fresh object of this kind in `db`. The returned
    /// handle is observed: every operation records an
    /// `op.<scheme>.<operation>` span (see the `lobstore-obs` crate).
    pub fn create(&self, db: &mut Db) -> Result<Box<dyn LargeObject>> {
        let spec = *self;
        observe_create(self.kind(), db, move |db| {
            Ok(match spec {
                ManagerSpec::Esm { leaf_pages } => {
                    Box::new(EsmObject::create(db, EsmParams { leaf_pages })?)
                        as Box<dyn LargeObject>
                }
                ManagerSpec::Starburst {
                    max_seg_pages,
                    known_size,
                } => Box::new(StarburstObject::create(
                    db,
                    StarburstParams {
                        max_seg_pages,
                        known_size,
                    },
                )?),
                ManagerSpec::Eos {
                    threshold_pages,
                    max_seg_pages,
                } => Box::new(EosObject::create(
                    db,
                    EosParams {
                        threshold_pages,
                        max_seg_pages,
                    },
                )?),
            })
        })
    }

    /// Re-open an existing object of this kind by its root page. The
    /// returned handle is observed, like [`Self::create`]'s.
    pub fn open(&self, db: &mut Db, root_page: u32) -> Result<Box<dyn LargeObject>> {
        let spec = *self;
        observe_open(self.kind(), db, move |db| {
            Ok(match spec {
                ManagerSpec::Esm { .. } => {
                    Box::new(EsmObject::open(db, root_page)?) as Box<dyn LargeObject>
                }
                ManagerSpec::Starburst { .. } => Box::new(StarburstObject::open(db, root_page)?),
                ManagerSpec::Eos { .. } => Box::new(EosObject::open(db, root_page)?),
            })
        })
    }

    /// Short label for tables ("ESM/4", "EOS/16", "Starburst").
    pub fn label(&self) -> String {
        match *self {
            ManagerSpec::Esm { leaf_pages } => format!("ESM/{leaf_pages}"),
            ManagerSpec::Starburst { .. } => "Starburst".to_string(),
            ManagerSpec::Eos {
                threshold_pages, ..
            } => format!("EOS/{threshold_pages}"),
        }
    }
}

/// Re-open an existing large object by its storage kind and root page —
/// the operation a long-field *descriptor* encodes (§2: the small object
/// holds a `(kind, root)` pair per long field).
pub fn open_object(db: &mut Db, kind: StorageKind, root_page: u32) -> Result<Box<dyn LargeObject>> {
    observe_open(kind, db, move |db| {
        Ok(match kind {
            StorageKind::Esm => Box::new(EsmObject::open(db, root_page)?) as Box<dyn LargeObject>,
            StorageKind::Eos => Box::new(EosObject::open(db, root_page)?),
            StorageKind::Starburst => Box::new(StarburstObject::open(db, root_page)?),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_all_kinds_and_use_through_dyn() {
        let mut db = Db::paper_default();
        for spec in [
            ManagerSpec::esm(4),
            ManagerSpec::starburst(),
            ManagerSpec::eos(16),
        ] {
            let mut obj = spec.create(&mut db).unwrap();
            obj.append(&mut db, b"dyn dispatch works").unwrap();
            let mut out = vec![0u8; 3];
            obj.read(&mut db, 4, &mut out).unwrap();
            assert_eq!(&out, b"dis");
            obj.check_invariants(&db).unwrap();
            obj.destroy(&mut db).unwrap();
        }
        assert_eq!(db.leaf_pages_allocated(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(ManagerSpec::esm(16).label(), "ESM/16");
        assert_eq!(ManagerSpec::starburst().label(), "Starburst");
        assert_eq!(ManagerSpec::eos(64).label(), "EOS/64");
    }
}
