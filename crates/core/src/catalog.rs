//! A named directory of large objects.
//!
//! The paper's managers hand back a root page number; any real deployment
//! needs a way to find those roots again. [`Catalog`] is a minimal,
//! persistent name → (storage kind, root page) map stored in a chain of
//! META pages, so databases survive restarts and images (see
//! [`crate::Db::crash_and_reboot`] and the image format in `lobstore-cli`).
//!
//! Page layout (little-endian):
//!
//! ```text
//! [0..4)  magic "CATL"
//! [4..6)  n_entries u16
//! [6..10) next page u32 (0 = end of chain)
//! [10..)  entries: [name_len u8][name bytes][kind u8][root u32]
//! ```

use lobstore_simdisk::{bytes as le, cast, AreaId, PageId, PAGE_SIZE};

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::object::StorageKind;

const CAT_MAGIC: u32 = 0x4341_544C; // "CATL"
const HDR: usize = 10;
/// Longest allowed object name.
pub const MAX_NAME: usize = 128;

/// One catalog entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    pub name: String,
    pub kind: StorageKind,
    pub root_page: u32,
}

/// A persistent name directory for large objects.
pub struct Catalog {
    root: u32,
}

impl Catalog {
    /// Create an empty catalog; its first page is flushed immediately so
    /// the catalog itself survives a crash.
    pub fn create(db: &mut Db) -> Result<Self> {
        let root = db.alloc_meta_page();
        db.with_new_meta_page(root, init_page);
        db.pool.flush_page(PageId::new(AreaId::META, root));
        Ok(Catalog { root })
    }

    /// Open an existing catalog by its first page.
    pub fn open(db: &mut Db, root: u32) -> Result<Self> {
        let magic = db.with_meta_page(root, |p| le::le_u32(p));
        if magic != CAT_MAGIC {
            return Err(LobError::Corrupt(format!(
                "page {root} is not a catalog page"
            )));
        }
        Ok(Catalog { root })
    }

    /// The first page of the catalog chain.
    pub fn root_page(&self) -> u32 {
        self.root
    }

    /// Register `name`. Fails if the name exists or is too long.
    pub fn put(
        &mut self,
        db: &mut Db,
        name: &str,
        kind: StorageKind,
        root_page: u32,
    ) -> Result<()> {
        if name.is_empty() || name.len() > MAX_NAME {
            return Err(LobError::Corrupt(format!(
                "catalog name must be 1..={MAX_NAME} bytes"
            )));
        }
        if self.get(db, name)?.is_some() {
            return Err(LobError::Corrupt(format!("name '{name}' already exists")));
        }
        let needed = 1 + name.len() + 1 + 4;
        let mut page = self.root;
        loop {
            let (n, next, used) = db.with_meta_page(page, |p| {
                let (n, next) = header(p);
                (n, next, used_bytes(p, n))
            });
            if PAGE_SIZE - used >= needed {
                db.with_meta_page_mut(page, |p| {
                    let mut at = used;
                    p[at] = name.len() as u8;
                    at += 1;
                    p[at..at + name.len()].copy_from_slice(name.as_bytes());
                    at += name.len();
                    p[at] = kind.as_u8();
                    at += 1;
                    p[at..at + 4].copy_from_slice(&root_page.to_le_bytes());
                    p[4..6].copy_from_slice(&(n + 1).to_le_bytes());
                });
                self.flush(db, page);
                return Ok(());
            }
            if next == 0 {
                // Chain a fresh page and retry there.
                let new = db.alloc_meta_page();
                db.with_new_meta_page(new, init_page);
                db.with_meta_page_mut(page, |p| {
                    p[6..10].copy_from_slice(&new.to_le_bytes());
                });
                self.flush(db, page);
                page = new;
            } else {
                page = next;
            }
        }
    }

    /// Look up a name.
    pub fn get(&self, db: &mut Db, name: &str) -> Result<Option<CatalogEntry>> {
        Ok(self.list(db)?.into_iter().find(|e| e.name == name))
    }

    /// Remove a name, returning its entry. The object itself is *not*
    /// destroyed — that is the caller's decision.
    pub fn remove(&mut self, db: &mut Db, name: &str) -> Result<Option<CatalogEntry>> {
        let mut removed = None;
        let mut page = self.root;
        while page != 0 {
            let (entries, next) = db.with_meta_page(page, |p| {
                let (n, next) = header(p);
                (parse_entries(p, n), next)
            });
            let entries = entries?;
            if let Some(pos) = entries.iter().position(|e| e.name == name) {
                let mut keep = entries;
                removed = Some(keep.remove(pos));
                db.with_meta_page_mut(page, |p| {
                    let next = header(p).1;
                    init_page(p);
                    p[6..10].copy_from_slice(&next.to_le_bytes());
                    let mut at = HDR;
                    for e in &keep {
                        p[at] = e.name.len() as u8;
                        at += 1;
                        p[at..at + e.name.len()].copy_from_slice(e.name.as_bytes());
                        at += e.name.len();
                        p[at] = e.kind.as_u8();
                        at += 1;
                        p[at..at + 4].copy_from_slice(&e.root_page.to_le_bytes());
                        at += 4;
                    }
                    p[4..6].copy_from_slice(&cast::usize_to_u16(keep.len()).to_le_bytes());
                });
                self.flush(db, page);
                break;
            }
            page = next;
        }
        Ok(removed)
    }

    /// Every entry, in chain order.
    pub fn list(&self, db: &mut Db) -> Result<Vec<CatalogEntry>> {
        let mut out = Vec::new();
        let mut page = self.root;
        while page != 0 {
            let (entries, next) = db.with_meta_page(page, |p| {
                if le::le_u32(p) != CAT_MAGIC {
                    return (None, 0);
                }
                let (n, next) = header(p);
                (Some(parse_entries(p, n)), next)
            });
            let entries =
                entries.ok_or_else(|| LobError::Corrupt("broken catalog chain".into()))??;
            out.extend(entries);
            page = next;
        }
        Ok(out)
    }

    /// The catalog's own page chain (for consistency checking).
    pub fn pages(&self, db: &mut Db) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        let mut page = self.root;
        while page != 0 {
            out.push(page);
            let next =
                db.with_meta_page(page, |p| (le::le_u32(p) == CAT_MAGIC).then(|| header(p).1));
            page = next.ok_or_else(|| LobError::Corrupt("broken catalog chain".into()))?;
        }
        Ok(out)
    }

    /// Number of registered names.
    pub fn len(&self, db: &mut Db) -> Result<usize> {
        Ok(self.list(db)?.len())
    }

    /// Whether the catalog holds no names.
    pub fn is_empty(&self, db: &mut Db) -> Result<bool> {
        Ok(self.len(db)? == 0)
    }

    fn flush(&self, db: &mut Db, page: u32) {
        db.pool.flush_page(PageId::new(AreaId::META, page));
    }
}

fn init_page(p: &mut [u8]) {
    p.fill(0);
    p[0..4].copy_from_slice(&CAT_MAGIC.to_le_bytes());
}

fn header(p: &[u8]) -> (u16, u32) {
    (le::le_u16(&p[4..]), le::le_u32(&p[6..]))
}

fn parse_entries(p: &[u8], n: u16) -> Result<Vec<CatalogEntry>> {
    let mut out = Vec::with_capacity(usize::from(n));
    let mut at = HDR;
    for _ in 0..n {
        let len = usize::from(p[at]);
        at += 1;
        let name = String::from_utf8_lossy(&p[at..at + len]).into_owned();
        at += len;
        let kind = StorageKind::from_u8(p[at]).ok_or_else(|| {
            LobError::Corrupt(format!("bad storage-kind byte {} in catalog", p[at]))
        })?;
        at += 1;
        let root = le::le_u32(&p[at..]);
        at += 4;
        out.push(CatalogEntry {
            name,
            kind,
            root_page: root,
        });
    }
    Ok(out)
}

fn used_bytes(p: &[u8], n: u16) -> usize {
    let mut at = HDR;
    for _ in 0..n {
        let len = usize::from(p[at]);
        at += 1 + len + 1 + 4;
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ManagerSpec;

    #[test]
    fn put_get_remove_roundtrip() {
        let mut db = Db::paper_default();
        let mut cat = Catalog::create(&mut db).unwrap();
        cat.put(&mut db, "alpha", StorageKind::Eos, 10).unwrap();
        cat.put(&mut db, "beta", StorageKind::Esm, 20).unwrap();
        assert_eq!(cat.len(&mut db).unwrap(), 2);
        let e = cat.get(&mut db, "alpha").unwrap().unwrap();
        assert_eq!((e.kind, e.root_page), (StorageKind::Eos, 10));
        assert!(cat.get(&mut db, "gamma").unwrap().is_none());
        let gone = cat.remove(&mut db, "alpha").unwrap().unwrap();
        assert_eq!(gone.name, "alpha");
        assert!(cat.get(&mut db, "alpha").unwrap().is_none());
        assert_eq!(cat.len(&mut db).unwrap(), 1);
        assert!(cat.remove(&mut db, "alpha").unwrap().is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = Db::paper_default();
        let mut cat = Catalog::create(&mut db).unwrap();
        cat.put(&mut db, "x", StorageKind::Esm, 1).unwrap();
        assert!(cat.put(&mut db, "x", StorageKind::Eos, 2).is_err());
        assert!(cat.put(&mut db, "", StorageKind::Eos, 2).is_err());
        assert!(cat
            .put(&mut db, &"n".repeat(MAX_NAME + 1), StorageKind::Eos, 2)
            .is_err());
    }

    #[test]
    fn chains_past_one_page() {
        let mut db = Db::paper_default();
        let mut cat = Catalog::create(&mut db).unwrap();
        // ~40 bytes per entry → several hundred entries need chaining.
        for i in 0..400 {
            cat.put(
                &mut db,
                &format!("object-number-{i:04}"),
                StorageKind::Eos,
                i,
            )
            .unwrap();
        }
        assert_eq!(cat.len(&mut db).unwrap(), 400);
        let e = cat.get(&mut db, "object-number-0399").unwrap().unwrap();
        assert_eq!(e.root_page, 399);
        // Remove from a middle page; the rest survives.
        cat.remove(&mut db, "object-number-0200").unwrap().unwrap();
        assert_eq!(cat.len(&mut db).unwrap(), 399);
        assert!(cat.get(&mut db, "object-number-0200").unwrap().is_none());
        assert!(cat.get(&mut db, "object-number-0201").unwrap().is_some());
    }

    #[test]
    fn survives_crash_after_flush() {
        let mut db = Db::paper_default();
        let mut cat = Catalog::create(&mut db).unwrap();
        let mut obj = ManagerSpec::eos(4).create(&mut db).unwrap();
        obj.append(&mut db, b"persistent bytes").unwrap();
        cat.put(&mut db, "thing", obj.kind(), obj.root_page())
            .unwrap();
        let cat_root = cat.root_page();
        db.checkpoint();
        db.crash_and_reboot();

        let cat = Catalog::open(&mut db, cat_root).unwrap();
        let e = cat.get(&mut db, "thing").unwrap().unwrap();
        let obj = crate::spec::open_object(&mut db, e.kind, e.root_page).unwrap();
        assert_eq!(obj.snapshot(&db), b"persistent bytes");
    }

    #[test]
    fn open_rejects_non_catalog_pages() {
        let mut db = Db::paper_default();
        let p = db.alloc_meta_page();
        db.with_new_meta_page(p, |page| page[0] = 1);
        assert!(Catalog::open(&mut db, p).is_err());
    }
}
