//! Storage-health telemetry: fragmentation and utilization metrics under
//! the `health.*` namespace (DESIGN.md §14).
//!
//! Two vantage points:
//!
//! * **Allocator health** — per area (LEAF / META), a [`FragStats`]
//!   recount of the buddy directories: free pages, the largest free run,
//!   and the derived external-fragmentation ratio. [`Db::sample_health`]
//!   publishes these as `health.<area>.*` gauges, a free-run-length
//!   histogram, and time-series points ticked by operation count.
//! * **Object health** — per object, extent contiguity and leaf
//!   utilization derived from cost-free [`LargeObject`] inspection
//!   ([`object_health`]). Benches and `lobctl` aggregate these per scheme
//!   with [`publish_object_health`].
//!
//! Everything here is *meta-inspection*: it reads allocator state and
//! peeked pages only, so sampling never perturbs the simulated I/O record
//! (loblint's io-accounting rule pins the inspectors; the
//! `health_metrics` integration test pins equality with an fsck-style
//! recount and stability across [`Db::crash_and_reboot`]).

use lobstore_buddy::FragStats;
use lobstore_obs::{gauge_set, histogram_record, series_record};

use crate::db::Db;
use crate::object::LargeObject;

/// One published health sample: both areas' allocator recounts at a tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthSample {
    /// Operation count at which the sample was taken (the series tick).
    pub tick: u64,
    /// LEAF-area allocator health.
    pub leaf: FragStats,
    /// META-area allocator health.
    pub meta: FragStats,
}

/// Extent-level health of one object, from cost-free inspection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectHealth {
    /// Logical object size in bytes.
    pub object_bytes: u64,
    /// Pages allocated to data segments.
    pub data_pages: u64,
    /// Pages allocated to index structures.
    pub index_pages: u64,
    /// Number of data segments.
    pub segments: u64,
    /// Adjacent segment pairs that are physically contiguous on disk
    /// (the next segment starts right after the previous one ends).
    pub contiguous_joins: u64,
}

impl ObjectHealth {
    /// Adjacent segment pairs (0 for objects of ≤ 1 segment).
    pub fn joins(&self) -> u64 {
        self.segments.saturating_sub(1)
    }

    /// Fraction of segment joins that are physically contiguous, in
    /// `[0, 1]`; a one-segment object is perfectly contiguous (1.0).
    /// This is the "pages per seek" driver: low contiguity means a
    /// sequential scan pays a seek at almost every segment boundary.
    pub fn contiguity(&self) -> f64 {
        if self.joins() == 0 {
            1.0
        } else {
            // f64 division behind a zero guard; cannot panic.
            // loblint: allow(panic-path)
            self.contiguous_joins as f64 / self.joins() as f64
        }
    }

    /// Bytes stored per allocated byte (data + index pages), in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        crate::object::Utilization {
            object_bytes: self.object_bytes,
            data_pages: self.data_pages,
            index_pages: self.index_pages,
        }
        .ratio()
    }
}

/// Compute one object's [`ObjectHealth`] by cost-free inspection
/// ([`LargeObject::segments`] + [`LargeObject::utilization`] never touch
/// the simulated disk's counters).
pub fn object_health(obj: &dyn LargeObject, db: &Db) -> ObjectHealth {
    let util = obj.utilization(db);
    let segs = obj.segments(db);
    let contiguous_joins = segs
        .windows(2)
        // windows(2) yields exactly-2-element slices; in-bounds by construction.
        // loblint: allow(panic-path)
        .filter(|w| w[1].start_page == w[0].start_page.saturating_add(w[0].pages))
        .count() as u64;
    ObjectHealth {
        object_bytes: util.object_bytes,
        data_pages: util.data_pages,
        index_pages: util.index_pages,
        segments: segs.len() as u64,
        contiguous_joins,
    }
}

/// Publish one area's [`FragStats`] under `health.<area>.*`: gauges for
/// the current values, one histogram observation per free run, and — when
/// `tick` is `Some` — a time-series point per gauge.
pub(crate) fn publish_area(area: &str, st: &FragStats, tick: Option<u64>) {
    let set = |metric: &str, v: f64| {
        let name = format!("health.{area}.{metric}");
        gauge_set(&name, v);
        if let Some(t) = tick {
            series_record(&name, t, v);
        }
    };
    set("spaces", f64::from(st.spaces));
    set("allocated_pages", st.allocated_pages as f64);
    set("free_pages", st.free_pages as f64);
    set("largest_free_run_pages", f64::from(st.largest_free_run));
    set("frag_ratio", st.frag_ratio());
    set("utilization", st.utilization());
    let hist = format!("health.{area}.free_run_pages");
    for &run in &st.free_runs {
        histogram_record(&hist, u64::from(run));
    }
}

/// Aggregate per-object health over a scheme's live objects and publish
/// it under `health.object.*` gauges (and series points when `tick` is
/// `Some`): mean contiguity, mean utilization, and totals. No-op on an
/// empty slice (gauges keep their previous values).
pub fn publish_object_health(objs: &[ObjectHealth], tick: Option<u64>) {
    if objs.is_empty() {
        return;
    }
    let n = objs.len() as f64;
    // f64 divisions by a length checked non-empty above; cannot panic.
    // loblint: allow(panic-path)
    let contiguity: f64 = objs.iter().map(ObjectHealth::contiguity).sum::<f64>() / n;
    // loblint: allow(panic-path)
    let utilization: f64 = objs.iter().map(ObjectHealth::utilization).sum::<f64>() / n;
    let segments: u64 = objs.iter().map(|o| o.segments).sum();
    let bytes: u64 = objs.iter().map(|o| o.object_bytes).sum();
    let set = |metric: &str, v: f64| {
        let name = format!("health.object.{metric}");
        gauge_set(&name, v);
        if let Some(t) = tick {
            series_record(&name, t, v);
        }
    };
    set("count", n);
    set("contiguity", contiguity);
    set("utilization", utilization);
    set("segments", segments as f64);
    set("bytes", bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ManagerSpec;
    use lobstore_obs::{gauge_value, series_snapshot};

    #[test]
    fn object_health_of_a_fresh_multi_segment_object() {
        let mut db = Db::paper_default();
        let mut obj = ManagerSpec::esm(4).create(&mut db).unwrap();
        // 10 full 4-page leaves, appended back to back: allocations are
        // sequential, so every join is contiguous.
        obj.append(&mut db, &vec![5u8; 10 * 4 * 4096]).unwrap();
        let h = object_health(obj.as_ref(), &db);
        assert_eq!(h.data_pages, 40);
        assert_eq!(h.segments, 10);
        assert_eq!(h.joins(), 9);
        assert_eq!(h.contiguous_joins, 9);
        assert_eq!(h.contiguity(), 1.0);
        assert!(h.utilization() > 0.9, "{}", h.utilization());
    }

    #[test]
    fn object_health_is_simulated_io_free() {
        let mut db = Db::paper_default();
        let mut obj = ManagerSpec::eos(16).create(&mut db).unwrap();
        obj.append(&mut db, &[7u8; 100_000]).unwrap();
        let before = db.io_stats();
        let _ = object_health(obj.as_ref(), &db);
        assert_eq!(db.io_stats() - before, Default::default());
    }

    #[test]
    fn single_segment_object_is_fully_contiguous() {
        let h = ObjectHealth {
            object_bytes: 4096,
            data_pages: 1,
            index_pages: 1,
            segments: 1,
            contiguous_joins: 0,
        };
        assert_eq!(h.joins(), 0);
        assert_eq!(h.contiguity(), 1.0);
        assert_eq!(h.utilization(), 0.5);
    }

    #[test]
    fn publish_area_sets_gauges_and_series() {
        lobstore_obs::reset();
        let mut db = Db::paper_default();
        let ext = db.alloc_leaf(32);
        publish_area("leaf", &db.leaf_frag_stats(), Some(7));
        assert_eq!(gauge_value("health.leaf.allocated_pages"), Some(32.0));
        assert_eq!(
            gauge_value("health.leaf.free_pages"),
            Some(f64::from(16 * 1024 - 32))
        );
        let s = series_snapshot("health.leaf.frag_ratio").unwrap();
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].tick, 7);
        db.free_leaf(ext);
    }

    #[test]
    fn publish_object_health_aggregates_means() {
        lobstore_obs::reset();
        let a = ObjectHealth {
            object_bytes: 4096,
            data_pages: 1,
            index_pages: 0,
            segments: 1,
            contiguous_joins: 0,
        };
        let b = ObjectHealth {
            object_bytes: 4096,
            data_pages: 2,
            index_pages: 0,
            segments: 2,
            contiguous_joins: 0,
        };
        publish_object_health(&[a, b], None);
        assert_eq!(gauge_value("health.object.count"), Some(2.0));
        assert_eq!(gauge_value("health.object.contiguity"), Some(0.5));
        assert_eq!(gauge_value("health.object.utilization"), Some(0.75));
        assert_eq!(gauge_value("health.object.segments"), Some(3.0));
        // Empty slice: gauges untouched.
        publish_object_health(&[], None);
        assert_eq!(gauge_value("health.object.count"), Some(2.0));
    }
}
