//! Span-per-operation observability for large objects.
//!
//! [`ObservedObject`] wraps any [`LargeObject`] and brackets each
//! I/O-bearing operation with a `lobstore-obs` span named
//! `op.<scheme>.<operation>` (e.g. `op.esm.append`). The span names are a
//! fixed 3×11 table of static strings, so the per-op counter bump never
//! allocates. [`crate::ManagerSpec::create`], [`crate::ManagerSpec::open`],
//! and [`crate::open_object`] return wrapped objects, so everything built
//! through the declarative layer is observed; constructing a concrete
//! manager directly bypasses observation.
//!
//! Two invariants the wrapper maintains:
//!
//! * **No simulated I/O of its own.** Annotations only use cost-free
//!   inspection ([`LargeObject::utilization`]); the wrapped operation's
//!   [`IoStats`] are exactly those of the bare object.
//! * **Accounting closure.** Every operation's `IoStats` delta is
//!   accumulated into the `span.io.*` counters, with or without a sink,
//!   so a run whose I/O goes only through observed operations satisfies
//!   `span.io.* == Db::io_stats()` — the consistency check the
//!   integration tests pin.

use lobstore_obs::json::Value;
use lobstore_obs::{counter_add, counter_value, sink_installed, Span};
use lobstore_simdisk::IoStats;

use crate::db::Db;
use crate::error::Result;
use crate::object::{LargeObject, SegmentInfo, StorageKind, Utilization};

/// The logical operations an observed span can describe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum OpName {
    /// Object creation (empty object, root/descriptor allocated).
    Create,
    /// Re-opening an existing object by root page.
    Open,
    /// Size lookup (may fix the root page).
    Size,
    /// Append at the object's end.
    Append,
    /// Byte-range read.
    Read,
    /// Segment-span lookup for streaming readers (a costed descent).
    Locate,
    /// Byte insertion at an arbitrary offset.
    Insert,
    /// Byte deletion at an arbitrary offset.
    Delete,
    /// In-place byte-range overwrite.
    Replace,
    /// Tail over-allocation release.
    Trim,
    /// Object destruction.
    Destroy,
}

/// Static span/counter name for `(kind, op)`; doubles as the per-op
/// counter name, so op counts exist even with no sink installed.
fn span_name(kind: StorageKind, op: OpName) -> &'static str {
    use OpName as O;
    use StorageKind as K;
    match (kind, op) {
        (K::Esm, O::Create) => "op.esm.create",
        (K::Esm, O::Open) => "op.esm.open",
        (K::Esm, O::Size) => "op.esm.size",
        (K::Esm, O::Append) => "op.esm.append",
        (K::Esm, O::Read) => "op.esm.read",
        (K::Esm, O::Locate) => "op.esm.locate",
        (K::Esm, O::Insert) => "op.esm.insert",
        (K::Esm, O::Delete) => "op.esm.delete",
        (K::Esm, O::Replace) => "op.esm.replace",
        (K::Esm, O::Trim) => "op.esm.trim",
        (K::Esm, O::Destroy) => "op.esm.destroy",
        (K::Starburst, O::Create) => "op.starburst.create",
        (K::Starburst, O::Open) => "op.starburst.open",
        (K::Starburst, O::Size) => "op.starburst.size",
        (K::Starburst, O::Append) => "op.starburst.append",
        (K::Starburst, O::Read) => "op.starburst.read",
        (K::Starburst, O::Locate) => "op.starburst.locate",
        (K::Starburst, O::Insert) => "op.starburst.insert",
        (K::Starburst, O::Delete) => "op.starburst.delete",
        (K::Starburst, O::Replace) => "op.starburst.replace",
        (K::Starburst, O::Trim) => "op.starburst.trim",
        (K::Starburst, O::Destroy) => "op.starburst.destroy",
        (K::Eos, O::Create) => "op.eos.create",
        (K::Eos, O::Open) => "op.eos.open",
        (K::Eos, O::Size) => "op.eos.size",
        (K::Eos, O::Append) => "op.eos.append",
        (K::Eos, O::Read) => "op.eos.read",
        (K::Eos, O::Locate) => "op.eos.locate",
        (K::Eos, O::Insert) => "op.eos.insert",
        (K::Eos, O::Delete) => "op.eos.delete",
        (K::Eos, O::Replace) => "op.eos.replace",
        (K::Eos, O::Trim) => "op.eos.trim",
        (K::Eos, O::Destroy) => "op.eos.destroy",
    }
}

/// Short scheme label used as a span field ("ESM" / "Starburst" / "EOS").
fn kind_label(kind: StorageKind) -> &'static str {
    match kind {
        StorageKind::Esm => "ESM",
        StorageKind::Starburst => "Starburst",
        StorageKind::Eos => "EOS",
    }
}

/// Operation label used as a span field ("append", "read", ...).
fn op_label(op: OpName) -> &'static str {
    match op {
        OpName::Create => "create",
        OpName::Open => "open",
        OpName::Size => "size",
        OpName::Append => "append",
        OpName::Read => "read",
        OpName::Locate => "locate",
        OpName::Insert => "insert",
        OpName::Delete => "delete",
        OpName::Replace => "replace",
        OpName::Trim => "trim",
        OpName::Destroy => "destroy",
    }
}

/// Snapshot of the instrumentation counters core's internals bump
/// (tree descents, segment reads/writes, shadow allocations); captured
/// before and after an operation to annotate its span with deltas.
#[derive(Copy, Clone)]
struct HookCounters {
    descents: u64,
    descend_depth: u64,
    seg_reads: u64,
    seg_writes: u64,
    shadow_pages: u64,
    fresh_pages: u64,
}

impl HookCounters {
    fn capture() -> HookCounters {
        HookCounters {
            descents: counter_value("core.tree.descents"),
            descend_depth: counter_value("core.tree.descend_depth"),
            seg_reads: counter_value("core.seg.reads"),
            seg_writes: counter_value("core.seg.writes"),
            shadow_pages: counter_value("core.shadow.pages"),
            fresh_pages: counter_value("core.shadow.fresh_pages"),
        }
    }
}

/// Bracketing state for one observed operation: the before-snapshot of
/// the disk's [`IoStats`] and (when a sink is listening) of the hook
/// counters.
pub(crate) struct OpObserver {
    kind: StorageKind,
    op: OpName,
    before_io: IoStats,
    hooks: Option<HookCounters>,
}

impl OpObserver {
    /// Capture the before-state of one operation on a `kind` object.
    pub(crate) fn begin(kind: StorageKind, op: OpName, db: &Db) -> OpObserver {
        OpObserver {
            kind,
            op,
            before_io: db.io_stats(),
            hooks: if sink_installed() {
                Some(HookCounters::capture())
            } else {
                None
            },
        }
    }

    /// Close the operation: accumulate its [`IoStats`] delta into the
    /// `span.io.*` counters, end the span (emitting the annotated record
    /// when a sink is installed), and advance the database's operation
    /// tick — which may fire the periodic health sampler
    /// ([`Db::set_health_sampling`]). The sampler only uses cost-free
    /// inspection, so the wrapper stays simulated-I/O-neutral.
    pub(crate) fn finish(self, db: &mut Db, object_bytes: Option<u64>, ok: bool) {
        db.note_op();
        let delta = db.io_stats() - self.before_io;
        counter_add("span.io.read_calls", delta.read_calls);
        counter_add("span.io.write_calls", delta.write_calls);
        counter_add("span.io.pages_read", delta.pages_read);
        counter_add("span.io.pages_written", delta.pages_written);
        counter_add("span.io.time_us", delta.time_us);
        let mut span = Span::begin(span_name(self.kind, self.op));
        if let Some(before) = self.hooks {
            let now = HookCounters::capture();
            span.field_str("scheme", kind_label(self.kind));
            span.field_str("op", op_label(self.op));
            if let Some(bytes) = object_bytes {
                span.field_u64("object_bytes", bytes);
            }
            span.field_u64("io_read_calls", delta.read_calls);
            span.field_u64("io_write_calls", delta.write_calls);
            span.field_u64("io_pages_read", delta.pages_read);
            span.field_u64("io_pages_written", delta.pages_written);
            span.field_u64("io_time_us", delta.time_us);
            span.field_u64("tree_descents", now.descents - before.descents);
            span.field_u64(
                "tree_descend_depth",
                now.descend_depth - before.descend_depth,
            );
            span.field_u64("segments_read", now.seg_reads - before.seg_reads);
            span.field_u64("segments_written", now.seg_writes - before.seg_writes);
            span.field_u64("shadow_pages", now.shadow_pages - before.shadow_pages);
            span.field_u64("fresh_index_pages", now.fresh_pages - before.fresh_pages);
            span.field("ok", Value::Bool(ok));
        }
        span.end();
    }
}

/// A [`LargeObject`] wrapper that spans every I/O-bearing operation.
/// Cost-free inspection methods delegate unobserved.
pub(crate) struct ObservedObject {
    inner: Box<dyn LargeObject>,
}

impl ObservedObject {
    /// Wrap `inner`; the result behaves identically (same simulated I/O,
    /// same results) but records spans and `span.io.*` counters.
    pub(crate) fn wrap(inner: Box<dyn LargeObject>) -> Box<dyn LargeObject> {
        Box::new(ObservedObject { inner })
    }

    /// Cost-free object size for span annotation, collected only when
    /// someone is listening. Never calls [`LargeObject::size`] — that
    /// could fix the root page and perturb the operation's own I/O.
    fn observed_bytes(&self, db: &Db) -> Option<u64> {
        if sink_installed() {
            Some(self.inner.utilization(db).object_bytes)
        } else {
            None
        }
    }
}

impl LargeObject for ObservedObject {
    fn kind(&self) -> StorageKind {
        self.inner.kind()
    }

    fn root_page(&self) -> u32 {
        self.inner.root_page()
    }

    fn size(&self, db: &mut Db) -> u64 {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Size, db);
        let n = self.inner.size(db);
        let bytes = if sink_installed() { Some(n) } else { None };
        obs.finish(db, bytes, true);
        n
    }

    fn append(&mut self, db: &mut Db, bytes: &[u8]) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Append, db);
        let r = self.inner.append(db, bytes);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn read(&self, db: &mut Db, off: u64, out: &mut [u8]) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Read, db);
        let r = self.inner.read(db, off, out);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn locate(&self, db: &mut Db, off: u64) -> Result<crate::object::SegSpan> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Locate, db);
        let r = self.inner.locate(db, off);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn insert(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Insert, db);
        let r = self.inner.insert(db, off, bytes);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn delete(&mut self, db: &mut Db, off: u64, len: u64) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Delete, db);
        let r = self.inner.delete(db, off, len);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn replace(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Replace, db);
        let r = self.inner.replace(db, off, bytes);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn trim(&mut self, db: &mut Db) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Trim, db);
        let r = self.inner.trim(db);
        let b = self.observed_bytes(db);
        obs.finish(db, b, r.is_ok());
        r
    }

    fn destroy(&mut self, db: &mut Db) -> Result<()> {
        let obs = OpObserver::begin(self.inner.kind(), OpName::Destroy, db);
        let r = self.inner.destroy(db);
        // The object is gone; no size annotation.
        obs.finish(db, None, r.is_ok());
        r
    }

    fn utilization(&self, db: &Db) -> Utilization {
        self.inner.utilization(db)
    }

    fn segments(&self, db: &Db) -> Vec<SegmentInfo> {
        self.inner.segments(db)
    }

    fn index_page_numbers(&self, db: &Db) -> Vec<u32> {
        self.inner.index_page_numbers(db)
    }

    fn check_invariants(&self, db: &Db) -> Result<()> {
        self.inner.check_invariants(db)
    }

    fn snapshot(&self, db: &Db) -> Vec<u8> {
        self.inner.snapshot(db)
    }
}

/// Observe an object construction (`Create`): run `f`, span the result,
/// and wrap the new object so its operations are observed too.
pub(crate) fn observe_create(
    kind: StorageKind,
    db: &mut Db,
    f: impl FnOnce(&mut Db) -> Result<Box<dyn LargeObject>>,
) -> Result<Box<dyn LargeObject>> {
    observe_build(kind, OpName::Create, db, f)
}

/// Observe an object re-open (`Open`); see [`observe_create`].
pub(crate) fn observe_open(
    kind: StorageKind,
    db: &mut Db,
    f: impl FnOnce(&mut Db) -> Result<Box<dyn LargeObject>>,
) -> Result<Box<dyn LargeObject>> {
    observe_build(kind, OpName::Open, db, f)
}

fn observe_build(
    kind: StorageKind,
    op: OpName,
    db: &mut Db,
    f: impl FnOnce(&mut Db) -> Result<Box<dyn LargeObject>>,
) -> Result<Box<dyn LargeObject>> {
    let obs = OpObserver::begin(kind, op, db);
    match f(db) {
        Ok(inner) => {
            let bytes = if sink_installed() {
                Some(inner.utilization(db).object_bytes)
            } else {
                None
            };
            obs.finish(db, bytes, true);
            Ok(ObservedObject::wrap(inner))
        }
        Err(e) => {
            obs.finish(db, None, false);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ManagerSpec;
    use lobstore_obs::{counter_value, install_sink, json, reset, snapshot, take_sink, MemorySink};

    #[test]
    fn spans_count_without_a_sink() {
        reset();
        let _ = take_sink();
        let mut db = Db::paper_default();
        db.reset_io_stats();
        let mut obj = ManagerSpec::esm(4).create(&mut db).unwrap();
        obj.append(&mut db, &[7u8; 10_000]).unwrap();
        let mut out = [0u8; 100];
        obj.read(&mut db, 50, &mut out).unwrap();
        assert_eq!(counter_value("op.esm.create"), 1);
        assert_eq!(counter_value("op.esm.append"), 1);
        assert_eq!(counter_value("op.esm.read"), 1);
        // Accounting closure: every simulated I/O happened inside an
        // observed operation, so the span.io.* counters equal the disk's
        // cumulative stats.
        let io = db.io_stats();
        assert_eq!(counter_value("span.io.read_calls"), io.read_calls);
        assert_eq!(counter_value("span.io.write_calls"), io.write_calls);
        assert_eq!(counter_value("span.io.pages_read"), io.pages_read);
        assert_eq!(counter_value("span.io.pages_written"), io.pages_written);
        assert_eq!(counter_value("span.io.time_us"), io.time_us);
    }

    #[test]
    fn spans_annotate_with_a_sink() {
        reset();
        let sink = MemorySink::new();
        install_sink(Box::new(sink.clone()));
        let mut db = Db::paper_default();
        let mut obj = ManagerSpec::eos(16).create(&mut db).unwrap();
        obj.append(&mut db, &[1u8; 60_000]).unwrap();
        obj.insert(&mut db, 10, &[2u8; 500]).unwrap();
        let _ = take_sink();
        let lines = sink.lines();
        assert_eq!(lines.len(), 3, "create + append + insert");
        let insert = json::parse(&lines[2]).unwrap();
        assert_eq!(
            insert.get("name").and_then(json::Value::as_str),
            Some("op.eos.insert")
        );
        assert_eq!(
            insert.get("scheme").and_then(json::Value::as_str),
            Some("EOS")
        );
        assert_eq!(
            insert.get("object_bytes").and_then(json::Value::as_u64),
            Some(60_500)
        );
        assert!(
            insert
                .get("tree_descents")
                .and_then(json::Value::as_u64)
                .unwrap()
                >= 1,
            "at least one descent to find the insert position"
        );
        assert!(
            insert
                .get("io_read_calls")
                .and_then(json::Value::as_u64)
                .unwrap()
                > 0,
            "insert reads the affected segment"
        );
        match insert.get("ok") {
            Some(json::Value::Bool(true)) => {}
            other => panic!("expected ok: true, got {other:?}"),
        }
    }

    #[test]
    fn annotation_is_simulated_io_free() {
        reset();
        let sink = MemorySink::new();
        install_sink(Box::new(sink.clone()));
        let mut db = Db::paper_default();
        let mut obj = ManagerSpec::starburst().create(&mut db).unwrap();
        obj.append(&mut db, &[3u8; 20_000]).unwrap();
        let observed_io = db.io_stats();
        let _ = take_sink();
        reset();
        // The same operations on a bare (unobserved) object cost exactly
        // the same simulated I/O.
        let mut db2 = Db::paper_default();
        let mut bare = crate::starburst::StarburstObject::create(
            &mut db2,
            crate::starburst::StarburstParams {
                max_seg_pages: 8192,
                known_size: false,
            },
        )
        .unwrap();
        bare.append(&mut db2, &[3u8; 20_000]).unwrap();
        assert_eq!(observed_io, db2.io_stats());
    }

    #[test]
    fn health_sampler_fires_on_cadence_and_costs_no_io() {
        reset();
        let _ = take_sink();
        let mut db = Db::paper_default();
        db.set_health_sampling(2);
        let mut obj = ManagerSpec::esm(4).create(&mut db).unwrap(); // op 1
        obj.append(&mut db, &[1u8; 30_000]).unwrap(); // op 2 → sample
        let io_mid = db.io_stats();
        let after_two =
            lobstore_obs::series_snapshot("health.leaf.frag_ratio").expect("sampler fired at op 2");
        assert_eq!(after_two.points.len(), 1);
        assert_eq!(after_two.points[0].tick, 2);
        assert_eq!(db.io_stats(), io_mid, "sampling itself is cost-free");

        obj.append(&mut db, &[2u8; 10_000]).unwrap(); // op 3
        obj.append(&mut db, &[3u8; 10_000]).unwrap(); // op 4 → sample
        assert_eq!(db.health_ops(), 4);
        let series = lobstore_obs::series_snapshot("health.leaf.allocated_pages").unwrap();
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[1].tick, 4);
        assert_eq!(
            series.last(),
            Some(db.leaf_pages_allocated() as f64),
            "gauge series tracks the allocator"
        );
        // Disabled sampler: ticks advance, no new samples.
        db.set_health_sampling(0);
        obj.append(&mut db, &[4u8; 1_000]).unwrap();
        obj.append(&mut db, &[5u8; 1_000]).unwrap();
        assert_eq!(db.health_ops(), 6);
        let series = lobstore_obs::series_snapshot("health.leaf.allocated_pages").unwrap();
        assert_eq!(series.points.len(), 2);
    }

    #[test]
    fn per_scheme_counters_are_separate() {
        reset();
        let mut db = Db::paper_default();
        for spec in [
            ManagerSpec::esm(4),
            ManagerSpec::starburst(),
            ManagerSpec::eos(16),
        ] {
            let mut obj = spec.create(&mut db).unwrap();
            obj.append(&mut db, &[9u8; 5_000]).unwrap();
            obj.destroy(&mut db).unwrap();
        }
        let snap = snapshot();
        for scheme in ["esm", "starburst", "eos"] {
            assert_eq!(snap.counter(&format!("op.{scheme}.create")), 1);
            assert_eq!(snap.counter(&format!("op.{scheme}.append")), 1);
            assert_eq!(snap.counter(&format!("op.{scheme}.destroy")), 1);
        }
    }
}
