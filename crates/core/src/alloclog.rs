//! Compact allocation log: crash recovery to the last committed version
//! (DESIGN.md §16.3).
//!
//! With [`crate::DbConfig::alloc_log`] enabled, the database appends a
//! byte-stream journal to a chain of META pages:
//!
//! * `Alloc`/`Free` records at the moment an extent is (logically)
//!   allocated or freed — replay reconstructs both buddy allocators from
//!   scratch, so crash recovery never has to trust possibly-stale space
//!   directories on disk;
//! * `RootImage` records at each commit for every committed META page
//!   that was overwritten in place since the previous commit (object
//!   roots, catalog pages) — the shadowing discipline makes these the
//!   *only* pages whose on-disk bytes can disagree with the committed
//!   state, and replay rewrites them from the images;
//! * `UndoImage` records, written and flushed *before* the first in-place
//!   overwrite of a committed page in each commit interval — if the
//!   overwritten page reaches disk ahead of the commit marker (a catalog
//!   self-flush, a pool write-back), recovery still has its committed
//!   pre-image;
//! * a `Commit` marker closing each version. The marker is the single
//!   commit point: replay applies everything up to the last valid marker
//!   and, from the tail past it, only `UndoImage` records.
//!
//! ## Page format
//!
//! Each chain page is a META page:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ALOG"
//! 4       4     generation (bumped by compaction; stale chains fail it)
//! 8       4     sequence number within the chain (head = 0)
//! 12      4     next chain page (0 = none)
//! 16      2     bytes of record data used in this page
//! 24      —     record bytes (records span page boundaries freely)
//! ```
//!
//! Records, little-endian:
//!
//! ```text
//! 1  Alloc      area u8, start u32, pages u32
//! 2  Free       area u8, start u32, pages u32
//! 3  RootImage  page u32, len u16, content[len]   (trailing zeros trimmed)
//! 4  Commit     version u64
//! 5  UndoImage  page u32, len u16, content[len]
//! ```
//!
//! The log is bounded: [`crate::Db::checkpoint`] compacts it to a single
//! snapshot (one `Alloc` per live extent, one `Free` per deferred free,
//! one `Commit`) under a new generation. A crash in the middle of
//! compaction leaves no valid commit marker under the new generation, and
//! recovery falls back to re-opening the allocators from the
//! freshly-checkpointed space directories.

use std::collections::{BTreeMap, HashSet};

use lobstore_buddy::{BuddyConfig, BuddyManager, Extent};
use lobstore_simdisk::{cast, AreaId, PageId, PAGE_SIZE};

use crate::db::Db;
use crate::error::{LobError, Result};

const LOG_MAGIC: &[u8; 4] = b"ALOG";
const GEN_OFF: usize = 4;
const SEQ_OFF: usize = 8;
const NEXT_OFF: usize = 12;
const USED_OFF: usize = 16;
const DATA_OFF: usize = 24;
/// Record bytes per chain page.
const PAGE_CAP: usize = PAGE_SIZE - DATA_OFF;

const TAG_ALLOC: u8 = 1;
const TAG_FREE: u8 = 2;
const TAG_ROOT_IMAGE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_UNDO_IMAGE: u8 = 5;

/// In-memory state of the allocation log (the chain lives in META pages).
pub(crate) struct AllocLog {
    /// First chain page. Fixed for the life of the database.
    head: u32,
    /// Current generation; chain pages with another generation are stale.
    generation: u32,
    /// All chain pages in order (`chain[0] == head`).
    chain: Vec<u32>,
    /// Record bytes already written into the last chain page.
    tail_used: usize,
    /// Record bytes appended but not yet written into chain pages.
    pending: Vec<u8>,
    /// Version of the last commit marker written.
    committed_version: u64,
    /// Committed META pages that already have an [`UndoImage`] in the
    /// current commit interval (re-imaging them would be redundant).
    imaged: HashSet<u32>,
    /// Records appended over the log's lifetime (observability).
    records: u64,
}

/// One parsed log record.
enum Record {
    Alloc(Extent),
    Free(Extent),
    RootImage { page: u32, content: Vec<u8> },
    Commit { version: u64 },
    UndoImage { page: u32, content: Vec<u8> },
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    if let Some(s) = buf.get_mut(at..at + 4) {
        s.copy_from_slice(&v.to_le_bytes());
    }
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    if let Some(s) = buf.get(at..at + 4) {
        b.copy_from_slice(s);
    }
    u32::from_le_bytes(b)
}

fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    if let Some(s) = buf.get_mut(at..at + 2) {
        s.copy_from_slice(&v.to_le_bytes());
    }
}

fn get_u16(buf: &[u8], at: usize) -> u16 {
    let mut b = [0u8; 2];
    if let Some(s) = buf.get(at..at + 2) {
        b.copy_from_slice(s);
    }
    u16::from_le_bytes(b)
}

fn push_extent_record(out: &mut Vec<u8>, tag: u8, ext: Extent) {
    out.push(tag);
    out.push(ext.area.0);
    out.extend_from_slice(&ext.start.to_le_bytes());
    out.extend_from_slice(&ext.pages.to_le_bytes());
}

/// Serialize an image record with trailing zeros trimmed (replay
/// zero-fills the page before applying the content).
fn push_image_record(out: &mut Vec<u8>, tag: u8, page: u32, content: &[u8]) {
    let len = content.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    out.push(tag);
    out.extend_from_slice(&page.to_le_bytes());
    out.extend_from_slice(&cast::usize_to_u16(len).to_le_bytes());
    out.extend_from_slice(content.get(..len).unwrap_or(&[]));
}

/// Parse one record at `stream[at..]`. Returns the record and the offset
/// just past it, or `None` if the bytes are truncated (the stream's tail
/// after a partial flush) or the tag is unknown.
fn parse_record(stream: &[u8], at: usize) -> Option<(Record, usize)> {
    let tag = *stream.get(at)?;
    match tag {
        TAG_ALLOC | TAG_FREE => {
            let body = stream.get(at + 1..at + 10)?;
            let area = *body.first()?;
            let ext = Extent::new(AreaId(area), get_u32(body, 1), get_u32(body, 5));
            let rec = if tag == TAG_ALLOC {
                Record::Alloc(ext)
            } else {
                Record::Free(ext)
            };
            Some((rec, at + 10))
        }
        TAG_ROOT_IMAGE | TAG_UNDO_IMAGE => {
            let hdr = stream.get(at + 1..at + 7)?;
            let page = get_u32(hdr, 0);
            let len = usize::from(get_u16(hdr, 4));
            let content = stream.get(at + 7..at + 7 + len)?.to_vec();
            let rec = if tag == TAG_ROOT_IMAGE {
                Record::RootImage { page, content }
            } else {
                Record::UndoImage { page, content }
            };
            Some((rec, at + 7 + len))
        }
        TAG_COMMIT => {
            let body = stream.get(at + 1..at + 9)?;
            let mut b = [0u8; 8];
            b.copy_from_slice(body);
            Some((
                Record::Commit {
                    version: u64::from_le_bytes(b),
                },
                at + 9,
            ))
        }
        _ => None,
    }
}

/// An area-keyed interval set used by [`Db::verify_alloc_log`] to replay
/// the log arithmetically, without touching any pages.
#[derive(Default)]
struct IntervalSet {
    /// `(area, start) → end` with no overlapping or adjacent entries.
    runs: BTreeMap<(u8, u32), u32>,
}

impl IntervalSet {
    fn insert(&mut self, ext: Extent) {
        if ext.pages == 0 {
            return;
        }
        let (mut start, mut end) = (ext.start, ext.end());
        let area = ext.area.0;
        // Absorb every run that overlaps or abuts [start, end).
        let keys: Vec<(u8, u32)> = self
            .runs
            .range((area, 0)..=(area, end))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let e = match self.runs.get(&k) {
                Some(&e) => e,
                None => continue,
            };
            if e < start {
                continue;
            }
            start = start.min(k.1);
            end = end.max(e);
            self.runs.remove(&k);
        }
        self.runs.insert((area, start), end);
    }

    fn remove(&mut self, ext: Extent) {
        if ext.pages == 0 {
            return;
        }
        let (start, end) = (ext.start, ext.end());
        let area = ext.area.0;
        let keys: Vec<(u8, u32)> = self
            .runs
            .range((area, 0)..=(area, end))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let e = match self.runs.get(&k) {
                Some(&e) => e,
                None => continue,
            };
            if e <= start || k.1 >= end {
                continue;
            }
            self.runs.remove(&k);
            if k.1 < start {
                self.runs.insert(k, start);
            }
            if e > end {
                self.runs.insert((area, end), e);
            }
        }
    }

    fn from_extents(exts: impl IntoIterator<Item = Extent>) -> IntervalSet {
        let mut s = IntervalSet::default();
        for e in exts {
            s.insert(e);
        }
        s
    }

    fn to_extents(&self) -> Vec<Extent> {
        self.runs
            .iter()
            .map(|(&(area, start), &end)| Extent::new(AreaId(area), start, end - start))
            .collect()
    }
}

impl Db {
    /// Bootstrap the allocation log on a fresh or newly-loaded database:
    /// allocate and format the head page, and seed the record stream with
    /// the head's own `Alloc` so replay adopts it.
    pub(crate) fn init_alloc_log(&mut self) {
        assert!(self.log.is_none(), "allocation log already initialized");
        assert!(
            self.cfg.shadowing,
            "the allocation log requires the shadowing discipline"
        );
        let head = self.meta_alloc.allocate(&mut self.pool, 1).start;
        let generation = 1;
        self.format_log_page(head, generation, 0);
        self.pool.flush_page(PageId::new(AreaId::META, head));
        let mut pending = Vec::new();
        push_extent_record(&mut pending, TAG_ALLOC, Extent::new(AreaId::META, head, 1));
        self.log = Some(AllocLog {
            head,
            generation,
            chain: vec![head],
            tail_used: 0,
            pending,
            committed_version: 0,
            imaged: HashSet::new(),
            records: 1,
        });
    }

    /// Chain pages currently owned by the allocation log (fsck treats
    /// them as reachable). Empty when the log is disabled.
    pub fn alloc_log_pages(&self) -> Vec<u32> {
        self.log.as_ref().map_or_else(Vec::new, |l| l.chain.clone())
    }

    /// Version recorded by the log's last commit marker (0 before the
    /// first commit, or when the log is disabled).
    pub fn alloc_log_committed_version(&self) -> u64 {
        self.log.as_ref().map_or(0, |l| l.committed_version)
    }

    /// Record an allocation in the log (no-op when the log is disabled).
    pub(crate) fn log_record_alloc(&mut self, ext: Extent) {
        if let Some(log) = &mut self.log {
            push_extent_record(&mut log.pending, TAG_ALLOC, ext);
            log.records += 1;
            lobstore_obs::counter_add("core.alloclog.records", 1);
        }
    }

    /// Record a logical free in the log (no-op when the log is disabled).
    /// Called at logical-free time, even when the physical free is
    /// deferred for a pinned snapshot — replay reconstructs the
    /// *committed* state, in which the extent is free.
    pub(crate) fn log_record_free(&mut self, ext: Extent) {
        if let Some(log) = &mut self.log {
            push_extent_record(&mut log.pending, TAG_FREE, ext);
            log.records += 1;
            lobstore_obs::counter_add("core.alloclog.records", 1);
        }
    }

    /// First in-place overwrite of committed META `page` in this commit
    /// interval: write its committed pre-image to the log — durably,
    /// before the overwrite can reach disk — and remember the page for a
    /// `RootImage` at the next commit.
    pub(crate) fn log_note_overwrite(&mut self, page: u32) {
        let Some(mut log) = self.log.take() else {
            return;
        };
        if !self.dirty_roots.contains(&page) {
            self.dirty_roots.push(page);
        }
        if log.imaged.insert(page) {
            let img = self.peek_meta(page);
            push_image_record(&mut log.pending, TAG_UNDO_IMAGE, page, &img[..]);
            log.records += 1;
            lobstore_obs::counter_add("core.alloclog.undo_images", 1);
            self.write_log_pending(&mut log, true);
        }
        self.log = Some(log);
    }

    /// Close version `version` in the log: append a `RootImage` for every
    /// committed page overwritten in place since the previous commit,
    /// append the commit marker, write the stream out, and flush the
    /// touched chain pages in order (the marker lands in the last page —
    /// a crash anywhere in between degrades to the previous commit).
    pub(crate) fn log_commit(&mut self, version: u64) {
        let Some(mut log) = self.log.take() else {
            self.dirty_roots.clear();
            return;
        };
        let roots = std::mem::take(&mut self.dirty_roots);
        for page in roots {
            let img = self.peek_meta(page);
            push_image_record(&mut log.pending, TAG_ROOT_IMAGE, page, &img[..]);
            log.records += 1;
            lobstore_obs::counter_add("core.alloclog.root_images", 1);
        }
        log.pending.push(TAG_COMMIT);
        log.pending.extend_from_slice(&version.to_le_bytes());
        log.records += 1;
        self.write_log_pending(&mut log, true);
        log.committed_version = version;
        log.imaged.clear();
        lobstore_obs::counter_add("core.alloclog.commits", 1);
        lobstore_obs::gauge_set("alloclog.chain_pages", log.chain.len() as f64);
        self.log = Some(log);
    }

    /// Drain `log.pending` into the chain, growing it as needed. A new
    /// chain page allocates directly from the META allocator and splices
    /// its own `Alloc` record at the write cursor, so the stream accounts
    /// for every page the log itself occupies. With `flush`, every
    /// touched page is flushed in chain order.
    fn write_log_pending(&mut self, log: &mut AllocLog, flush: bool) {
        if log.pending.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut log.pending);
        let mut i = 0usize;
        let mut touched = vec![*log.chain.last().unwrap_or(&log.head)];
        while i < buf.len() {
            if log.tail_used >= PAGE_CAP {
                // Grow the chain. Allocation bypasses the Db hooks — the
                // spliced record *is* the bookkeeping.
                let np = self.meta_alloc.allocate(&mut self.pool, 1).start;
                let mut rec = Vec::with_capacity(10);
                push_extent_record(&mut rec, TAG_ALLOC, Extent::new(AreaId::META, np, 1));
                log.records += 1;
                buf.splice(i..i, rec);
                let tail = *log.chain.last().unwrap_or(&log.head);
                self.with_log_page_mut(tail, |p| put_u32(p, NEXT_OFF, np));
                let seq = cast::usize_to_u32(log.chain.len());
                self.format_log_page(np, log.generation, seq);
                log.chain.push(np);
                log.tail_used = 0;
                touched.push(np);
                lobstore_obs::counter_add("core.alloclog.chain_growth", 1);
                continue;
            }
            let n = (PAGE_CAP - log.tail_used).min(buf.len() - i);
            let tail = *log.chain.last().unwrap_or(&log.head);
            let at = DATA_OFF + log.tail_used;
            let used = log.tail_used + n;
            self.with_log_page_mut(tail, |p| {
                if let (Some(dst), Some(src)) = (p.get_mut(at..at + n), buf.get(i..i + n)) {
                    dst.copy_from_slice(src);
                }
                put_u16(p, USED_OFF, cast::usize_to_u16(used));
            });
            log.tail_used = used;
            i += n;
        }
        if flush {
            for p in touched {
                self.pool.flush_page(PageId::new(AreaId::META, p));
            }
        }
    }

    /// Write a fresh chain-page header (fresh funnel: the frame is not
    /// read from disk).
    fn format_log_page(&mut self, page: u32, generation: u32, seq: u32) {
        self.meta_cache.invalidate(page);
        let mut g = self.pool.guard_new(PageId::new(AreaId::META, page));
        let p = &mut g[..];
        if let Some(m) = p.get_mut(0..4) {
            m.copy_from_slice(LOG_MAGIC);
        }
        put_u32(p, GEN_OFF, generation);
        put_u32(p, SEQ_OFF, seq);
        put_u32(p, NEXT_OFF, 0);
        put_u16(p, USED_OFF, 0);
    }

    /// Raw write funnel for log chain pages and replay-applied images:
    /// invalidates the node cache like every META write, but runs none of
    /// the versioning/transaction/log hooks (logging the log's own writes
    /// would recurse).
    pub(crate) fn with_log_page_mut<R>(&mut self, page: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.meta_cache.invalidate(page);
        let mut g = self.pool.guard_mut(PageId::new(AreaId::META, page));
        f(&mut g[..])
    }

    /// Read the on-disk chain under the log's current generation:
    /// concatenated record bytes plus the pages that produced them. The
    /// walk stops at the first page that fails validation (stale
    /// generation, bad magic, out-of-order sequence) — exactly the pages
    /// an interrupted flush left behind.
    fn read_log_stream(&self, log: &AllocLog) -> (Vec<u8>, Vec<u32>) {
        let mut stream = Vec::new();
        let mut pages = Vec::new();
        let mut next = log.head;
        let mut seq = 0u32;
        loop {
            let p = self.peek_meta(next);
            let valid = p.get(0..4).is_some_and(|m| m == LOG_MAGIC)
                && get_u32(&p[..], GEN_OFF) == log.generation
                && get_u32(&p[..], SEQ_OFF) == seq;
            if !valid {
                break;
            }
            let used_raw = usize::from(get_u16(&p[..], USED_OFF));
            let used = if used_raw > PAGE_CAP {
                PAGE_CAP
            } else {
                used_raw
            };
            stream.extend_from_slice(p.get(DATA_OFF..DATA_OFF + used).unwrap_or(&[]));
            pages.push(next);
            let nx = get_u32(&p[..], NEXT_OFF);
            // A page with spare capacity is the last page of the stream;
            // its next pointer (if any) is leftover from a truncated
            // write.
            if used < PAGE_CAP || nx == 0 {
                break;
            }
            next = nx;
            seq = seq.saturating_add(1);
        }
        (stream, pages)
    }

    /// Crash recovery with the allocation log: rebuild both allocators
    /// from scratch by replaying `Alloc`/`Free` records up to the last
    /// commit marker, rewrite in-place-written pages from their last
    /// committed `RootImage`, and restore pages the crashed tail had
    /// overwritten from their `UndoImage`s. Falls back to re-opening the
    /// allocators from the space directories when the chain holds no
    /// commit marker under the current generation (bootstrap, or a crash
    /// mid-compaction — compaction checkpoints everything first, so the
    /// directories are authoritative there).
    pub(crate) fn replay_alloc_log(&mut self) {
        let Some(log) = self.log.take() else { return };
        let (stream, _) = self.read_log_stream(&log);

        // Locate the last commit marker.
        let mut at = 0usize;
        let mut committed_end = None;
        let mut committed_version = 0u64;
        while let Some((rec, next)) = parse_record(&stream, at) {
            if let Record::Commit { version } = rec {
                committed_end = Some(next);
                committed_version = version;
            }
            at = next;
        }

        let Some(committed_end) = committed_end else {
            // No committed state under this generation: trust the space
            // directories (see the method docs) and restart the log from
            // the live state.
            self.meta_alloc = BuddyManager::open(
                BuddyConfig::new(AreaId::META, self.cfg.meta_space_pages),
                &mut self.pool,
            );
            self.leaf_alloc = BuddyManager::open(
                BuddyConfig::new(AreaId::LEAF, self.cfg.leaf_space_pages),
                &mut self.pool,
            );
            lobstore_obs::counter_add("core.alloclog.replay_fallbacks", 1);
            self.restart_log_from_live_state(log.head, log.generation.saturating_add(1), 0);
            return;
        };

        // Replay the committed prefix into fresh allocators.
        self.meta_alloc =
            BuddyManager::new(BuddyConfig::new(AreaId::META, self.cfg.meta_space_pages));
        self.leaf_alloc =
            BuddyManager::new(BuddyConfig::new(AreaId::LEAF, self.cfg.leaf_space_pages));
        let mut redo: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        let mut at = 0usize;
        while at < committed_end {
            let Some((rec, next)) = parse_record(&stream, at) else {
                break;
            };
            match rec {
                Record::Alloc(ext) => {
                    let alloc = if ext.area == AreaId::META {
                        &mut self.meta_alloc
                    } else {
                        &mut self.leaf_alloc
                    };
                    alloc.adopt(&mut self.pool, ext);
                }
                Record::Free(ext) => {
                    let alloc = if ext.area == AreaId::META {
                        &mut self.meta_alloc
                    } else {
                        &mut self.leaf_alloc
                    };
                    alloc.free(&mut self.pool, ext);
                }
                Record::RootImage { page, content } => {
                    redo.insert(page, content);
                }
                Record::Commit { .. } | Record::UndoImage { .. } => {}
            }
            at = next;
        }
        // Records past the last marker belong to the crashed tail: only
        // their undo images apply (first per page — the content as of the
        // last commit).
        let mut undone: HashSet<u32> = HashSet::new();
        while let Some((rec, next)) = parse_record(&stream, at) {
            if let Record::UndoImage { page, content } = rec {
                if undone.insert(page) {
                    redo.insert(page, content);
                }
            }
            at = next;
        }
        for (page, content) in redo {
            self.with_log_page_mut(page, |p| {
                p.fill(0);
                if let Some(dst) = p.get_mut(..content.len()) {
                    dst.copy_from_slice(&content);
                }
            });
            self.pool.flush_page(PageId::new(AreaId::META, page));
        }

        // Truncate the in-memory chain to the committed prefix and seal
        // the tail page so a second crash replays identically.
        let page_idx = committed_end / PAGE_CAP;
        let within = committed_end % PAGE_CAP;
        let (keep, tail_used) = if within == 0 {
            (page_idx, PAGE_CAP)
        } else {
            // `page_idx < chain.len()` (committed_end is inside the
            // stream the chain produced), so no overflow.
            // loblint: allow(arith-overflow)
            (page_idx + 1, within)
        };
        let mut chain = log.chain.clone();
        chain.truncate(keep.max(1));
        if let Some(&tail) = chain.last() {
            self.with_log_page_mut(tail, |p| {
                put_u16(p, USED_OFF, cast::usize_to_u16(tail_used));
                put_u32(p, NEXT_OFF, 0);
            });
            self.pool.flush_page(PageId::new(AreaId::META, tail));
        }
        self.log = Some(AllocLog {
            head: log.head,
            generation: log.generation,
            chain,
            tail_used,
            pending: Vec::new(),
            committed_version,
            imaged: HashSet::new(),
            records: log.records,
        });
        lobstore_obs::counter_add("core.alloclog.replays", 1);
        // Make the recovered state durable (directories and rewritten
        // pages are only pool-dirty until now).
        self.pool.flush_all();
    }

    /// Rebuild the log as a snapshot of the *live* allocator state under
    /// generation `generation`: one `Alloc` per allocated extent (the
    /// head included), one `Free` per deferred free (the committed state
    /// has them free), and a commit marker at `version`.
    fn restart_log_from_live_state(&mut self, head: u32, generation: u32, version: u64) {
        // The head page may not be allocated in the live state (crash
        // before the first commit): claim it back.
        self.meta_alloc
            .adopt(&mut self.pool, Extent::new(AreaId::META, head, 1));
        let mut pending = Vec::new();
        let mut records = 0u64;
        for ext in self.meta_allocated_ranges() {
            push_extent_record(&mut pending, TAG_ALLOC, ext);
            records += 1;
        }
        for ext in self.leaf_allocated_ranges() {
            push_extent_record(&mut pending, TAG_ALLOC, ext);
            records += 1;
        }
        for ext in self.deferred_extents() {
            push_extent_record(&mut pending, TAG_FREE, ext);
            records += 1;
        }
        self.format_log_page(head, generation, 0);
        self.log = Some(AllocLog {
            head,
            generation,
            chain: vec![head],
            tail_used: 0,
            pending,
            committed_version: 0,
            imaged: HashSet::new(),
            records,
        });
        self.dirty_roots.clear();
        self.log_commit(version);
    }

    /// Compact the allocation log (called by [`Db::checkpoint`] after
    /// `flush_all`): free the old chain beyond the head, bump the
    /// generation, and rewrite the log as a snapshot of the live state.
    /// Bounds the chain regardless of how many operations have run.
    pub(crate) fn compact_alloc_log(&mut self) {
        let Some(log) = self.log.take() else { return };
        for &p in log.chain.iter().skip(1) {
            self.meta_cache.invalidate(p);
            self.meta_alloc
                .free(&mut self.pool, Extent::new(AreaId::META, p, 1));
        }
        lobstore_obs::counter_add("core.alloclog.compactions", 1);
        self.restart_log_from_live_state(
            log.head,
            log.generation.saturating_add(1),
            self.current_version(),
        );
    }

    /// Retire the log entirely: free every chain page (head included).
    /// Used by [`Db::save_image`] so images never carry log pages; the
    /// caller re-initializes afterwards.
    pub(crate) fn retire_alloc_log(&mut self) {
        let Some(log) = self.log.take() else { return };
        for &p in &log.chain {
            self.meta_cache.invalidate(p);
            self.meta_alloc
                .free(&mut self.pool, Extent::new(AreaId::META, p, 1));
        }
    }

    /// Verify the allocation log against the live allocators: replaying
    /// every record (committed and pending) must yield exactly the live
    /// allocated set minus the extents whose free is deferred for pinned
    /// snapshots. Pure arithmetic — no pages are modified. `Ok` when the
    /// log is disabled.
    pub fn verify_alloc_log(&mut self) -> Result<()> {
        let Some(log) = self.log.take() else {
            return Ok(());
        };
        let (stream, _) = self.read_log_stream(&log);
        let mut replayed = IntervalSet::default();
        let apply = |bytes: &[u8], set: &mut IntervalSet| -> usize {
            let mut at = 0usize;
            while let Some((rec, next)) = parse_record(bytes, at) {
                match rec {
                    Record::Alloc(ext) => set.insert(ext),
                    Record::Free(ext) => set.remove(ext),
                    _ => {}
                }
                at = next;
            }
            at
        };
        let parsed = apply(&stream, &mut replayed);
        // The stream must parse exactly to its end: partial records only
        // ever exist after a crash, and replay truncates them.
        let stream_ok = parsed == stream.len();
        apply(&log.pending, &mut replayed);
        self.log = Some(log);
        if !stream_ok {
            return Err(LobError::Corrupt(
                "allocation log: record stream ends mid-record".into(),
            ));
        }

        let mut live = IntervalSet::from_extents(
            self.meta_allocated_ranges()
                .into_iter()
                .chain(self.leaf_allocated_ranges()),
        );
        for ext in self.deferred_extents() {
            live.remove(ext);
        }
        let (a, b) = (replayed.to_extents(), live.to_extents());
        if a != b {
            return Err(LobError::InvariantViolated(format!(
                "allocation log diverges from live allocators: replayed {} extents, live (minus \
                 deferred) {} extents",
                a.len(),
                b.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_the_parser() {
        let mut buf = Vec::new();
        push_extent_record(&mut buf, TAG_ALLOC, Extent::new(AreaId::META, 7, 1));
        push_extent_record(&mut buf, TAG_FREE, Extent::new(AreaId::LEAF, 128, 64));
        push_image_record(&mut buf, TAG_ROOT_IMAGE, 3, &[1, 2, 3, 0, 0]);
        push_image_record(&mut buf, TAG_UNDO_IMAGE, 4, &[0, 0, 9]);
        buf.push(TAG_COMMIT);
        buf.extend_from_slice(&42u64.to_le_bytes());

        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((rec, next)) = parse_record(&buf, at) {
            seen.push(match rec {
                Record::Alloc(e) => format!("A{e}"),
                Record::Free(e) => format!("F{e}"),
                Record::RootImage { page, content } => format!("R{page}:{}", content.len()),
                Record::UndoImage { page, content } => format!("U{page}:{}", content.len()),
                Record::Commit { version } => format!("C{version}"),
            });
            at = next;
        }
        assert_eq!(at, buf.len(), "stream parses to the end");
        assert_eq!(seen.len(), 5);
        assert!(
            seen[2].starts_with("R3:3"),
            "trailing zeros trimmed: {}",
            seen[2]
        );
        assert!(
            seen[3].starts_with("U4:3"),
            "leading zeros kept: {}",
            seen[3]
        );
        assert_eq!(seen[4], "C42");
    }

    #[test]
    fn truncated_records_parse_as_none() {
        let mut buf = Vec::new();
        push_extent_record(&mut buf, TAG_ALLOC, Extent::new(AreaId::META, 7, 1));
        for cut in 1..buf.len() {
            assert!(
                parse_record(&buf[..cut], 0).is_none(),
                "cut at {cut} must not parse"
            );
        }
        assert!(parse_record(&buf, 0).is_some());
    }

    #[test]
    fn interval_set_merges_and_splits() {
        let mut s = IntervalSet::default();
        s.insert(Extent::new(AreaId::LEAF, 0, 4));
        s.insert(Extent::new(AreaId::LEAF, 4, 4));
        s.insert(Extent::new(AreaId::META, 0, 2));
        assert_eq!(
            s.to_extents(),
            vec![
                Extent::new(AreaId::META, 0, 2),
                Extent::new(AreaId::LEAF, 0, 8)
            ]
        );
        s.remove(Extent::new(AreaId::LEAF, 2, 3));
        assert_eq!(
            s.to_extents(),
            vec![
                Extent::new(AreaId::META, 0, 2),
                Extent::new(AreaId::LEAF, 0, 2),
                Extent::new(AreaId::LEAF, 5, 3)
            ]
        );
    }
}
