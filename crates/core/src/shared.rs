//! Coarse-grained sharing of a database across threads.
//!
//! The paper's study — and therefore the engine — is single-client: every
//! operation takes `&mut Db` and runs to completion. [`SharedDb`] makes
//! that contract usable from multiple threads by serializing operations
//! behind one lock (object handles themselves are plain data and travel
//! freely between threads).
//!
//! This is intentionally *not* fine-grained concurrency control: latches,
//! lock crabbing, and transactions are outside the paper's scope (§3.3:
//! "our study does not involve transactions"). The wrapper gives a
//! correct, simple multi-threaded embedding — one operation at a time,
//! like the paper's simulation driver.

use std::sync::{Arc, Mutex, PoisonError};

use crate::db::Db;

/// A cloneable, thread-safe handle to one database. All clones refer to
/// the same underlying [`Db`]; operations are serialized.
#[derive(Clone)]
pub struct SharedDb {
    inner: Arc<Mutex<Db>>,
}

impl SharedDb {
    /// Wrap a database for shared, serialized access.
    pub fn new(db: Db) -> Self {
        SharedDb {
            inner: Arc::new(Mutex::new(db)),
        }
    }

    /// Run `f` with exclusive access to the database. A poisoned lock
    /// (a panic in another thread's closure) is recovered rather than
    /// propagated: the database state itself carries no partial-update
    /// hazard across the lock, every operation re-validates on entry.
    pub fn with<R>(&self, f: impl FnOnce(&mut Db) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Recover the unique [`Db`] if this is the last handle.
    pub fn try_unwrap(self) -> Result<Db, SharedDb> {
        Arc::try_unwrap(self.inner)
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .map_err(|inner| SharedDb { inner })
    }
}

// The whole stack must be transferable across threads for SharedDb to be
// useful; these compile-time assertions pin that property.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Db>();
    assert_send::<crate::EsmObject>();
    assert_send::<crate::EosObject>();
    assert_send::<crate::StarburstObject>();
    assert_send::<SharedDb>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ManagerSpec;

    #[test]
    fn threads_share_one_database() {
        let shared = SharedDb::new(Db::paper_default());
        // Each thread owns one object and hammers it.
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                let spec = match t % 3 {
                    0 => ManagerSpec::esm(4),
                    1 => ManagerSpec::eos(4),
                    _ => ManagerSpec::starburst(),
                };
                let mut obj = shared.with(|db| spec.create(db)).unwrap();
                let mut model = Vec::new();
                for i in 0..30usize {
                    let chunk = vec![t.wrapping_mul(31).wrapping_add(i as u8); 5_000];
                    shared.with(|db| obj.append(db, &chunk)).unwrap();
                    model.extend_from_slice(&chunk);
                    if i % 7 == 3 {
                        shared.with(|db| obj.delete(db, 0, 2_000)).unwrap();
                        model.drain(0..2_000);
                    }
                }
                let snap = shared.with(|db| {
                    obj.check_invariants(db).unwrap();
                    obj.snapshot(db)
                });
                assert_eq!(snap, model, "thread {t} content diverged");
                obj.root_page()
            }));
        }
        let roots: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All four objects coexist and are distinct.
        let unique: std::collections::HashSet<_> = roots.iter().collect();
        assert_eq!(unique.len(), 4);
        // The database comes back out once every clone is gone.
        let mut db = shared.try_unwrap().ok().expect("last handle");
        assert!(db.leaf_pages_allocated() > 0);
        let _ = db.io_stats();
        db.checkpoint();
    }

    #[test]
    fn try_unwrap_fails_while_shared() {
        let a = SharedDb::new(Db::paper_default());
        let b = a.clone();
        let a = a.try_unwrap().err().expect("still shared");
        drop(b);
        assert!(a.try_unwrap().is_ok());
    }
}
