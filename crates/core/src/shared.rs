//! Coarse-grained sharing of a database across threads, with a parallel
//! read side for snapshot scans.
//!
//! The paper's study — and therefore the engine — is single-client: every
//! *mutating* operation takes `&mut Db` and runs to completion.
//! [`SharedDb`] makes that contract usable from multiple threads with a
//! **two-tier lock** (DESIGN.md §17):
//!
//! * mutating operations ([`SharedDb::with`]) take the **write side** of
//!   one [`RwLock`] and run serialized, exactly like the paper's
//!   simulation driver;
//! * version-pinned snapshot scans ([`SharedDb::snapshot_reader`]) take
//!   only the **read side**: everything a pinned [`SnapshotReader`]
//!   touches below its root is immutable while the pin is held, and the
//!   buffer pool's internal sharded latches make the page traffic itself
//!   thread-safe — so any number of scanners stream concurrently, and
//!   with each other *and* block only writers.
//!
//! This is still not fine-grained concurrency control over updates:
//! latches, lock crabbing, and transactions are outside the paper's scope
//! (§3.3: "our study does not involve transactions"). The read side is
//! safe precisely because MVCC pins freeze the scanned storage.
//!
//! # Poison recovery
//!
//! Both lock sides recover a poisoned lock (a panic in another thread's
//! closure) rather than propagating it, on both tiers for the same
//! reason: the database state carries no partial-update hazard across
//! the lock — every mutating operation re-validates on entry, and a
//! reader that panicked mid-scan held no pool pins or latches at the
//! `RwLock` boundary (page pins live strictly inside pool calls). The
//! snapshot pin a panicking reader leaks is released by its
//! [`SharedSnapshotReader`]'s `Drop`.

use std::io::{BufRead, Read, Seek, SeekFrom};
use std::sync::{Arc, PoisonError, RwLock};

use crate::db::Db;
use crate::error::Result;
use crate::version::{Snapshot, SnapshotReader};

/// A cloneable, thread-safe handle to one database. All clones refer to
/// the same underlying [`Db`]; mutating operations are serialized on the
/// write side of one lock, snapshot scans share the read side.
#[derive(Clone)]
pub struct SharedDb {
    inner: Arc<RwLock<Db>>,
}

impl SharedDb {
    /// Wrap a database for shared access.
    pub fn new(db: Db) -> Self {
        SharedDb {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Run `f` with exclusive access to the database (the write tier).
    /// Blocks while any other writer *or any snapshot scanner* holds the
    /// lock. Contended acquisitions are counted on
    /// `core.shared.write_waits`.
    pub fn with<R>(&self, f: impl FnOnce(&mut Db) -> R) -> R {
        if let Ok(mut g) = self.inner.try_write() {
            return f(&mut g);
        }
        lobstore_obs::counter_add("core.shared.write_waits", 1);
        f(&mut self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Run `f` with shared (read-only) access to the database. Any number
    /// of readers run concurrently; contended acquisitions are counted on
    /// `core.shared.read_waits`.
    ///
    /// `&Db` exposes no mutation, so this tier cannot violate the
    /// engine's single-writer contract; the buffer pool and simulated
    /// disk are internally synchronized for the page traffic `&Db` reads
    /// perform.
    pub fn with_read<R>(&self, f: impl FnOnce(&Db) -> R) -> R {
        if let Ok(g) = self.inner.try_read() {
            return f(&g);
        }
        lobstore_obs::counter_add("core.shared.read_waits", 1);
        f(&self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Non-blocking probe for the write tier: run `f` only if the lock is
    /// immediately available, else return `None` without waiting. The
    /// reader-scaling bench uses this to report lock-wait pressure
    /// without perturbing the writers it measures.
    pub fn try_with<R>(&self, f: impl FnOnce(&mut Db) -> R) -> Option<R> {
        match self.inner.try_write() {
            Ok(mut g) => Some(f(&mut g)),
            Err(_) => None,
        }
    }

    /// Open a pinned snapshot scan over the object rooted at `root_page`.
    ///
    /// Takes the write lock briefly (pinning mutates version state), then
    /// returns a cursor whose reads need only the **read** side — see
    /// [`SharedSnapshotReader`]. Dropping the cursor releases the pin.
    pub fn snapshot_reader(&self, root_page: u32) -> Result<SharedSnapshotReader> {
        let (snap, reader) = self.with(|db| {
            let snap = db.snapshot();
            match SnapshotReader::new(db, &snap, root_page) {
                Ok(r) => Ok((snap, r)),
                Err(e) => {
                    db.release_snapshot(snap);
                    Err(e)
                }
            }
        })?;
        Ok(SharedSnapshotReader {
            shared: self.clone(),
            snap: Some(snap),
            reader,
        })
    }

    /// Recover the unique [`Db`] if this is the last handle.
    pub fn try_unwrap(self) -> std::result::Result<Db, SharedDb> {
        Arc::try_unwrap(self.inner)
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .map_err(|inner| SharedDb { inner })
    }
}

/// A positional cursor streaming one object as of a pinned version,
/// holding the database lock only in **read** mode while scanning — the
/// `SharedDb` twin of [`crate::ObjectReader`].
///
/// Implements [`Read`], [`BufRead`] (with the snapshot reader's
/// read-ahead as the buffer), and [`Seek`]. Each refill takes the shared
/// lock once per read-ahead span (up to 4 MB), so concurrent scanners
/// spend almost all their time outside any `SharedDb`-level lock.
///
/// Dropping the cursor re-enters the write tier once to release the
/// snapshot pin; call [`Self::close`] to do it explicitly.
pub struct SharedSnapshotReader {
    shared: SharedDb,
    snap: Option<Snapshot>,
    reader: SnapshotReader,
}

impl SharedSnapshotReader {
    /// Object size at the pinned version.
    pub fn size(&self) -> u64 {
        self.reader.size()
    }

    /// The pinned version this cursor reads.
    pub fn version(&self) -> u64 {
        self.snap.as_ref().map_or(0, Snapshot::version)
    }

    /// Release the snapshot pin now (otherwise done on drop).
    pub fn close(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if let Some(snap) = self.snap.take() {
            self.shared.with(|db| db.release_snapshot(snap));
        }
    }
}

impl Read for SharedSnapshotReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let SharedSnapshotReader { shared, reader, .. } = self;
        Ok(shared.with_read(|db| reader.read_ref(db, out)))
    }
}

impl BufRead for SharedSnapshotReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        // Fast path: while the read-ahead buffer covers the cursor, hand
        // bytes out without touching the lock at all — a scanner only
        // re-enters the read tier once per exhausted buffer.
        if !self.reader.buffer_covers_pos() {
            let SharedSnapshotReader { shared, reader, .. } = self;
            // Refill under the shared lock; the returned slice borrows
            // the cursor's own read-ahead buffer, valid after the lock
            // drops.
            shared.with_read(|db| {
                reader.buffered_ref(db);
            });
        }
        Ok(self.reader.buffered_ref_cached())
    }

    fn consume(&mut self, amt: usize) {
        self.reader.consume(amt);
    }
}

impl Seek for SharedSnapshotReader {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        let size = self.reader.size();
        let target = match pos {
            SeekFrom::Start(o) => i128::from(o),
            SeekFrom::End(d) => i128::from(size) + i128::from(d),
            SeekFrom::Current(d) => i128::from(self.reader.position()) + i128::from(d),
        };
        if target < 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "seek before byte 0",
            ));
        }
        let clamped = u64::try_from(target).unwrap_or(u64::MAX).min(size);
        self.reader.seek(clamped);
        Ok(clamped)
    }
}

impl Drop for SharedSnapshotReader {
    fn drop(&mut self) {
        self.release();
    }
}

// The whole stack must be transferable across threads for SharedDb to be
// useful — and `Db` must additionally be `Sync` for the read tier to
// hand `&Db` to concurrent scanners; these compile-time assertions pin
// both properties.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Db>();
    assert_sync::<Db>();
    assert_send::<crate::EsmObject>();
    assert_send::<crate::EosObject>();
    assert_send::<crate::StarburstObject>();
    assert_send::<SharedDb>();
    assert_send::<SharedSnapshotReader>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ManagerSpec;

    #[test]
    fn threads_share_one_database() {
        let shared = SharedDb::new(Db::paper_default());
        // Each thread owns one object and hammers it.
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                let spec = match t % 3 {
                    0 => ManagerSpec::esm(4),
                    1 => ManagerSpec::eos(4),
                    _ => ManagerSpec::starburst(),
                };
                let mut obj = shared.with(|db| spec.create(db)).unwrap();
                let mut model = Vec::new();
                for i in 0..30usize {
                    let chunk = vec![t.wrapping_mul(31).wrapping_add(i as u8); 5_000];
                    shared.with(|db| obj.append(db, &chunk)).unwrap();
                    model.extend_from_slice(&chunk);
                    if i % 7 == 3 {
                        shared.with(|db| obj.delete(db, 0, 2_000)).unwrap();
                        model.drain(0..2_000);
                    }
                }
                let snap = shared.with(|db| {
                    obj.check_invariants(db).unwrap();
                    obj.snapshot(db)
                });
                assert_eq!(snap, model, "thread {t} content diverged");
                obj.root_page()
            }));
        }
        let roots: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All four objects coexist and are distinct.
        let unique: std::collections::HashSet<_> = roots.iter().collect();
        assert_eq!(unique.len(), 4);
        // The database comes back out once every clone is gone.
        let mut db = shared.try_unwrap().ok().expect("last handle");
        assert!(db.leaf_pages_allocated() > 0);
        let _ = db.io_stats();
        db.checkpoint();
    }

    #[test]
    fn try_unwrap_fails_while_shared() {
        let a = SharedDb::new(Db::paper_default());
        let b = a.clone();
        let a = a.try_unwrap().err().expect("still shared");
        drop(b);
        assert!(a.try_unwrap().is_ok());
    }

    #[test]
    fn read_tier_runs_concurrently_with_itself() {
        let shared = SharedDb::new(Db::paper_default());
        let mut obj = shared.with(|db| ManagerSpec::eos(4).create(db)).unwrap();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        shared.with(|db| obj.append(db, &payload)).unwrap();

        // Two cursors over the same object stream in parallel and both
        // see the committed bytes.
        let mk = || shared.snapshot_reader(obj.root_page()).unwrap();
        let (a, b) = (mk(), mk());
        let want = payload.clone();
        let t = std::thread::spawn(move || {
            let mut r = a;
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out, want);
        });
        let mut r = b;
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, payload);
        drop(r);
        t.join().unwrap();
        // Both pins released on drop.
        assert_eq!(shared.with(|db| db.pinned_snapshots()), 0);
    }

    #[test]
    fn try_with_probe_does_not_block() {
        let shared = SharedDb::new(Db::paper_default());
        assert!(shared.try_with(|db| db.current_version()).is_some());
        // While a reader holds the shared side, the probe reports
        // contention instead of blocking.
        let guard = shared.inner.read().unwrap();
        assert!(shared.try_with(|_| ()).is_none());
        drop(guard);
    }

    #[test]
    fn seek_and_bufread_follow_io_contracts() {
        let shared = SharedDb::new(Db::paper_default());
        let mut obj = shared.with(|db| ManagerSpec::esm(4).create(db)).unwrap();
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 199) as u8).collect();
        shared.with(|db| obj.append(db, &payload)).unwrap();

        let mut r = shared.snapshot_reader(obj.root_page()).unwrap();
        assert_eq!(r.size(), payload.len() as u64);
        assert_eq!(r.seek(SeekFrom::End(-100)).unwrap(), r.size() - 100);
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail, &payload[payload.len() - 100..]);

        assert_eq!(r.seek(SeekFrom::Start(10)).unwrap(), 10);
        let buf = r.fill_buf().unwrap();
        assert!(!buf.is_empty());
        assert_eq!(buf[0], payload[10]);
        let skip = buf.len().min(5);
        r.consume(skip);
        let mut one = [0u8; 1];
        r.read_exact(&mut one).unwrap();
        assert_eq!(one[0], payload[10 + skip]);
        r.close();
        assert_eq!(shared.with(|db| db.pinned_snapshots()), 0);
    }
}
