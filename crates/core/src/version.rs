//! MVCC object versioning over the shadow/copy-on-write path (DESIGN.md
//! §16).
//!
//! The shadowing discipline (§3.3) already guarantees that an update
//! never overwrites committed bytes *except* at the root page, which is
//! updated in place. That gap is exactly what this module closes, turning
//! the copy-on-write cost every update already pays into a versioning
//! mechanism:
//!
//! * every committed operation (or [`crate::Db::txn`] batch) advances a
//!   database-global **version number**;
//! * [`crate::Db::snapshot`] pins a version. While any pin is held,
//!   in-place writes to committed META pages first **archive** the old
//!   page content into an in-memory overlay, tagged with the last version
//!   it was valid for, and every `free` of a committed page or extent is
//!   **deferred** — the pages stay allocated (so nothing can reuse and
//!   clobber them) until no pin needs them;
//! * [`SnapshotReader`] walks an object's index *as of* the pinned
//!   version: the root comes from the overlay (or the live page when it
//!   was never overwritten since), everything below the root is immutable
//!   while pinned, so ordinary costed reads serve the rest.
//!
//! Old versions are reclaimed incrementally: whenever a pin is released
//! or a version commits, overlay copies older than the oldest pin are
//! dropped and deferred frees whose version has passed are executed.
//! Snapshots are in-memory handles — a crash releases all of them, and
//! recovery (the allocation log, `alloclog.rs`) replays to the last
//! *committed* version.
//!
//! Default-path neutrality: with no snapshot pinned and no transaction
//! open, every hook in this module reduces to an integer bump — the
//! golden traces of the paper's three schemes are bit-identical.

use std::collections::{BTreeMap, HashMap};

use lobstore_buddy::Extent;
use lobstore_simdisk::{cast, PAGE_SIZE};

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::node::{Node, RootHdr};
use crate::object::StorageKind;
use crate::segdata::read_seg_bytes;

/// Upper bound on one snapshot-reader refill (matches
/// [`crate::ObjectReader`]'s read-ahead cap).
const READ_AHEAD_MAX: usize = 4 << 20;

/// One archived pre-image of a META page that was overwritten in place.
struct ArchivedPage {
    /// Last committed version this content was valid for: a reader
    /// pinned at `v` wants the first archived copy with
    /// `valid_through >= v`, else the live page.
    valid_through: u64,
    content: Box<[u8; PAGE_SIZE]>,
}

/// A free that is being held back because a pinned snapshot may still
/// read the pages.
struct DeferredFree {
    /// The version whose commit superseded these pages: pins at versions
    /// `<= free_after` still need them; once every pin is newer, the
    /// free executes.
    free_after: u64,
    ext: Extent,
}

/// Per-database version state (owned by [`Db`]).
pub(crate) struct VersionState {
    /// Last committed version number. Version 0 is the empty database.
    current: u64,
    /// Pinned version → number of open snapshots at that version.
    pins: BTreeMap<u64, u32>,
    /// META page → archived pre-images, oldest first, strictly
    /// increasing `valid_through` tags.
    overlay: HashMap<u32, Vec<ArchivedPage>>,
    /// Frees held back for pinned snapshots, in the order they arrived.
    deferred: Vec<DeferredFree>,
}

impl VersionState {
    /// Version 0 (the empty database), nothing pinned, nothing deferred.
    pub fn new() -> Self {
        VersionState {
            current: 0,
            pins: BTreeMap::new(),
            overlay: HashMap::new(),
            deferred: Vec::new(),
        }
    }

    /// Is at least one snapshot pinned?
    pub fn pinned(&self) -> bool {
        !self.pins.is_empty()
    }

    fn oldest_pin(&self) -> Option<u64> {
        self.pins.keys().next().copied()
    }
}

/// A read handle pinned to a committed version. Obtain one with
/// [`Db::snapshot`]; release it with [`Db::release_snapshot`] so the
/// storage it pins can be reclaimed.
#[must_use = "an unreleased snapshot pins old versions forever"]
#[derive(Debug)]
pub struct Snapshot {
    version: u64,
}

impl Snapshot {
    /// The committed version this snapshot reads.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Db {
    /// Pin the current committed version and return a read handle for it.
    /// Reads through the returned [`Snapshot`] (see [`SnapshotReader`])
    /// observe exactly the bytes committed at this version, no matter how
    /// many updates or transactions commit afterwards.
    ///
    /// # Panics
    /// If shadowing is disabled (in-place leaf updates make old versions
    /// unreconstructible) or a transaction is open (its writes are not
    /// yet a committed version).
    pub fn snapshot(&mut self) -> Snapshot {
        assert!(
            self.config().shadowing,
            "snapshots require the shadowing discipline (DbConfig::shadowing)"
        );
        assert!(
            !self.txn_active(),
            "cannot open a snapshot inside a transaction"
        );
        let v = self.versions.current;
        *self.versions.pins.entry(v).or_insert(0) += 1;
        lobstore_obs::counter_add("core.mvcc.snapshots_opened", 1);
        self.publish_version_gauges();
        Snapshot { version: v }
    }

    /// Release a snapshot, allowing the versions it pinned to be
    /// reclaimed (archived root images dropped, deferred frees executed).
    pub fn release_snapshot(&mut self, snap: Snapshot) {
        let v = snap.version;
        match self.versions.pins.get_mut(&v) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.versions.pins.remove(&v);
            }
            None => unreachable!("snapshot {v} released but never pinned"),
        }
        lobstore_obs::counter_add("core.mvcc.snapshots_released", 1);
        self.reclaim_versions();
        self.publish_version_gauges();
    }

    /// The last committed version number.
    pub fn current_version(&self) -> u64 {
        self.versions.current
    }

    /// Number of snapshots currently pinned.
    pub fn pinned_snapshots(&self) -> usize {
        self.versions
            .pins
            .values()
            .map(|&n| cast::u32_to_usize(n))
            .sum()
    }

    /// Is `version` still pinned by at least one snapshot?
    pub(crate) fn is_pinned(&self, version: u64) -> bool {
        self.versions.pins.contains_key(&version)
    }

    /// Extents whose free is deferred for pinned snapshots (the fsck path
    /// treats these as owned by the version store, not leaked).
    pub fn deferred_extents(&self) -> Vec<Extent> {
        self.versions.deferred.iter().map(|d| d.ext).collect()
    }

    /// Archive the pre-image of META `page` before an in-place overwrite,
    /// when at least one snapshot is pinned. Called by the META write
    /// funnel for pages that were *not* allocated by the current
    /// operation — by the shadowing discipline those in-place writes are
    /// exactly the root/header updates. Idempotent per committed version:
    /// the second overwrite within one version finds the tag and skips.
    pub(crate) fn archive_page_preimage(&mut self, page: u32) {
        if !self.versions.pinned() {
            return;
        }
        let current = self.versions.current;
        if let Some(copies) = self.versions.overlay.get(&page) {
            if copies.last().is_some_and(|c| c.valid_through == current) {
                return;
            }
        }
        let content = self.peek_meta(page);
        self.versions
            .overlay
            .entry(page)
            .or_default()
            .push(ArchivedPage {
                valid_through: current,
                content,
            });
        lobstore_obs::counter_add("core.mvcc.pages_archived", 1);
    }

    /// Queue `ext` to be freed once no pin at a version `<= free_after`
    /// remains. Caller has already decided the free cannot run now.
    pub(crate) fn defer_free(&mut self, ext: Extent) {
        let free_after = self.versions.current;
        self.versions
            .deferred
            .push(DeferredFree { free_after, ext });
        lobstore_obs::counter_add("core.mvcc.frees_deferred", 1);
    }

    /// Commit point of one operation (or one transaction batch): write
    /// the allocation-log commit marker for the next version, then
    /// advance it. Called by the shadow context's `finish` (outside a
    /// transaction) and by the transaction commit.
    pub(crate) fn commit_version(&mut self) {
        let v = self.versions.current + 1;
        self.log_commit(v);
        self.bump_version();
    }

    /// End-of-operation commit for managers that run no [`crate::shadow::OpCtx`]
    /// (Starburst writes no index pages — §4.2, so its operations have
    /// no shadow context whose `finish` would commit). Inside a
    /// transaction this is a no-op: the batch commits as one version.
    pub(crate) fn op_commit(&mut self) {
        if !self.txn_active() {
            self.commit_version();
        }
    }

    /// Advance the version and reclaim whatever the oldest pin no longer
    /// needs.
    fn bump_version(&mut self) {
        self.versions.current += 1;
        lobstore_obs::counter_add("core.mvcc.versions_committed", 1);
        self.reclaim_versions();
        self.publish_version_gauges();
    }

    /// Drop overlay copies and execute deferred frees that no pin can
    /// reach any more.
    pub(crate) fn reclaim_versions(&mut self) {
        let min_pin = self.versions.oldest_pin();
        // Overlay copy tagged `t` serves only pins at versions <= t.
        let keep_tag = |t: u64| min_pin.is_some_and(|m| m <= t);
        self.versions.overlay.retain(|_, copies| {
            copies.retain(|c| keep_tag(c.valid_through));
            !copies.is_empty()
        });
        // A deferred free tagged `free_after` is still needed by pins at
        // versions <= free_after.
        let mut run = Vec::new();
        self.versions.deferred.retain(|d| {
            if keep_tag(d.free_after) {
                true
            } else {
                run.push(d.ext);
                false
            }
        });
        for ext in run {
            lobstore_obs::counter_add("core.mvcc.frees_reclaimed", 1);
            self.free_now(ext);
        }
    }

    /// Publish the version gauges: how far behind the oldest snapshot is
    /// and how much storage reclamation is waiting on it.
    fn publish_version_gauges(&self) {
        let age = self
            .versions
            .oldest_pin()
            .map_or(0, |m| self.versions.current - m);
        lobstore_obs::gauge_set("mvcc.snapshot_age", age as f64);
        lobstore_obs::gauge_set("mvcc.pinned_snapshots", self.pinned_snapshots() as f64);
        let held: u64 = self
            .versions
            .deferred
            .iter()
            .map(|d| u64::from(d.ext.pages))
            .sum();
        lobstore_obs::gauge_set("mvcc.deferred_pages", held as f64);
    }

    /// Read META `page` as of `version`: the first archived copy still
    /// valid at that version, else the live page (costed, like any read).
    pub(crate) fn versioned_meta_page<R>(
        &mut self,
        page: u32,
        version: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        let archived = self
            .versions
            .overlay
            .get(&page)
            .and_then(|copies| copies.iter().position(|c| c.valid_through >= version));
        match archived {
            Some(i) => {
                let copy = self
                    .versions
                    .overlay
                    .get(&page)
                    .and_then(|copies| copies.get(i));
                match copy {
                    Some(c) => f(&c.content[..]),
                    None => unreachable!("index found above"),
                }
            }
            None => self.with_meta_page(page, f),
        }
    }

    /// Deep verification of the version store (`paranoid` feature):
    /// overlay tags must be strictly increasing and no newer than the
    /// current version, pins must reference committed versions, and no
    /// two deferred extents may overlap (that would become a double free
    /// at reclamation).
    #[cfg(feature = "paranoid")]
    pub fn paranoid_verify_versions(&self) -> Result<()> {
        let current = self.versions.current;
        for (&page, copies) in &self.versions.overlay {
            let mut last = None;
            for c in copies {
                if c.valid_through > current {
                    return Err(LobError::InvariantViolated(format!(
                        "overlay for META page {page} tagged {} beyond current version {current}",
                        c.valid_through
                    )));
                }
                if last.is_some_and(|l| l >= c.valid_through) {
                    return Err(LobError::InvariantViolated(format!(
                        "overlay for META page {page} has non-increasing tags"
                    )));
                }
                last = Some(c.valid_through);
            }
        }
        if let Some((&v, _)) = self.versions.pins.last_key_value() {
            if v > current {
                return Err(LobError::InvariantViolated(format!(
                    "snapshot pinned at {v} beyond current version {current}"
                )));
            }
        }
        let mut exts: Vec<&Extent> = self.versions.deferred.iter().map(|d| &d.ext).collect();
        exts.sort_by_key(|e| (e.area, e.start));
        for (a, b) in exts.iter().zip(exts.iter().skip(1)) {
            if a.area == b.area && a.end() > b.start {
                return Err(LobError::InvariantViolated(format!(
                    "deferred frees overlap: {a} and {b}"
                )));
            }
        }
        for d in &self.versions.deferred {
            if d.free_after > current {
                return Err(LobError::InvariantViolated(format!(
                    "deferred free of {} tagged {} beyond current version {current}",
                    d.ext, d.free_after
                )));
            }
        }
        Ok(())
    }

    /// Forget all snapshots, archived pages, and deferred frees — the
    /// crash path. Snapshots are in-memory handles; after a reboot the
    /// committed on-disk state is the only version. Deferred frees are
    /// *not* executed: with the allocation log enabled, replay already
    /// reconstructs the committed allocator state (which has them free);
    /// without it, the directories on disk are authoritative.
    pub(crate) fn clear_version_state(&mut self) {
        self.versions = VersionState::new();
        self.publish_version_gauges();
    }
}

/// A positional cursor reading one object *as of* a pinned snapshot.
///
/// The reader resolves the object's root through the version overlay
/// once, at construction — everything reachable from that root is
/// immutable while the snapshot stays pinned, so subsequent refills are
/// ordinary costed reads (one index descent + one byte-range segment
/// read per span, exactly like [`crate::ObjectReader`]).
///
/// Unlike [`crate::ObjectReader`] the cursor does not borrow the
/// database: each call takes `&mut Db`, so readers on other threads of a
/// [`crate::SharedDb`] can interleave with a writer's operations and
/// still observe stable bytes.
pub struct SnapshotReader {
    version: u64,
    /// Parsed root: level and entries as of the snapshot.
    root: Node,
    size: u64,
    pos: u64,
    buf: Vec<u8>,
    buf_start: u64,
}

impl SnapshotReader {
    /// Open a snapshot cursor over the object rooted at `root_page`.
    /// Fails if the page does not hold a manager root at this version.
    pub fn new(db: &mut Db, snap: &Snapshot, root_page: u32) -> Result<SnapshotReader> {
        let v = snap.version();
        let (hdr, root) = db.versioned_meta_page(root_page, v, |p| {
            let hdr = RootHdr::read(p);
            let node = Node::read_root(p, &hdr);
            (hdr, node)
        });
        if StorageKind::from_u8(hdr.kind).is_none() {
            return Err(LobError::Corrupt(format!(
                "page {root_page} is not an object root at version {v} (kind {})",
                hdr.kind
            )));
        }
        Ok(SnapshotReader {
            version: v,
            root,
            size: hdr.size,
            pos: 0,
            buf: Vec::new(),
            buf_start: 0,
        })
    }

    /// Object size at the snapshot version.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Move the cursor (clamped to the snapshot's object size).
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos.min(self.size);
    }

    /// Locate the leaf segment holding object byte `off`: returns
    /// `(segment first page, segment start offset, segment byte count)`.
    /// Index pages below the root are immutable while the snapshot is
    /// pinned, so the walk uses the ordinary (cached, costed) node reads.
    fn locate(&self, db: &mut Db, off: u64) -> (u32, u64, u64) {
        debug_assert!(off < self.size);
        let mut level = self.root.level;
        let mut base = 0u64;
        let mut cursor: Option<Node> = None;
        loop {
            let node = cursor.as_ref().unwrap_or(&self.root);
            // `off >= base` along the whole descent: `base` is the byte
            // offset where the current subtree starts.
            // loblint: allow(arith-overflow)
            let (i, within) = node.find_child(off - base);
            let e = match node.entries.get(i) {
                Some(e) => *e,
                None => unreachable!("find_child returned an in-range index"),
            };
            // `within <= off` by the same subtree-offset invariant.
            // loblint: allow(arith-overflow)
            base = off - within;
            if level == 0 {
                return (e.ptr, base, e.count);
            }
            level -= 1;
            cursor = Some(db.with_meta_node(e.ptr, Clone::clone));
        }
    }

    /// Refill the read-ahead buffer at the current position: one locate,
    /// one byte-range segment read to the end of the span (capped).
    fn refill(&mut self, db: &mut Db) {
        assert!(
            db.is_pinned(self.version),
            "snapshot at version {} was released while a reader was open",
            self.version
        );
        let (ptr, seg_start, seg_len) = self.locate(db, self.pos);
        // Segment offsets and lengths are bounded by the object size
        // (<= MAX_OP_BYTES per op), and locate() returns the segment
        // containing `pos`, so `seg_start <= pos < seg_start + seg_len`.
        // loblint: allow(arith-overflow)
        let span_end = (seg_start + seg_len).min(self.size);
        // loblint: allow(arith-overflow)
        let want = cast::to_usize(span_end - self.pos).min(READ_AHEAD_MAX);
        // loblint: allow(arith-overflow)
        self.buf = read_seg_bytes(db, ptr, self.pos - seg_start, want as u64);
        self.buf_start = self.pos;
    }

    /// Read up to `out.len()` bytes at the cursor; returns the count
    /// (0 at end of object). Short reads happen at span boundaries,
    /// like [`std::io::Read`].
    pub fn read(&mut self, db: &mut Db, out: &mut [u8]) -> usize {
        let remaining = self.size.saturating_sub(self.pos);
        let n = cast::to_usize((out.len() as u64).min(remaining));
        if n == 0 {
            return 0;
        }
        let in_buf = self
            .pos
            .checked_sub(self.buf_start)
            .is_some_and(|d| d < self.buf.len() as u64);
        if !in_buf {
            self.refill(db);
        }
        // The buffered-range check (or the refill) guarantees
        // `buf_start <= pos < buf_start + buf.len()`.
        // loblint: allow(arith-overflow)
        let lo = cast::to_usize(self.pos - self.buf_start);
        let take = n.min(self.buf.len().saturating_sub(lo));
        // `lo < buf.len()` after the refill above and `take` is clamped.
        // loblint: allow(panic-path)
        out[..take].copy_from_slice(&self.buf[lo..lo + take]);
        // `pos + take <= size <= u64::MAX` (take was clamped to
        // `size - pos` above).
        // loblint: allow(arith-overflow)
        self.pos += take as u64;
        take
    }

    /// Read from the cursor to the end of the object.
    pub fn read_to_end(&mut self, db: &mut Db) -> Vec<u8> {
        let mut out = Vec::with_capacity(cast::to_usize(self.size.saturating_sub(self.pos)));
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let n = self.read(db, &mut chunk);
            if n == 0 {
                return out;
            }
            out.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        }
    }
}
