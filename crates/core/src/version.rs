//! MVCC object versioning over the shadow/copy-on-write path (DESIGN.md
//! §16).
//!
//! The shadowing discipline (§3.3) already guarantees that an update
//! never overwrites committed bytes *except* at the root page, which is
//! updated in place. That gap is exactly what this module closes, turning
//! the copy-on-write cost every update already pays into a versioning
//! mechanism:
//!
//! * every committed operation (or [`crate::Db::txn`] batch) advances a
//!   database-global **version number**;
//! * [`crate::Db::snapshot`] pins a version. While any pin is held,
//!   in-place writes to committed META pages first **archive** the old
//!   page content into an in-memory overlay, tagged with the last version
//!   it was valid for, and every `free` of a committed page or extent is
//!   **deferred** — the pages stay allocated (so nothing can reuse and
//!   clobber them) until no pin needs them;
//! * [`SnapshotReader`] walks an object's index *as of* the pinned
//!   version: the root comes from the overlay (or the live page when it
//!   was never overwritten since), everything below the root is immutable
//!   while pinned, so ordinary costed reads serve the rest.
//!
//! Old versions are reclaimed incrementally: whenever a pin is released
//! or a version commits, overlay copies older than the oldest pin are
//! dropped and deferred frees whose version has passed are executed.
//! Snapshots are in-memory handles — a crash releases all of them, and
//! recovery (the allocation log, `alloclog.rs`) replays to the last
//! *committed* version.
//!
//! Default-path neutrality: with no snapshot pinned and no transaction
//! open, every hook in this module reduces to an integer bump — the
//! golden traces of the paper's three schemes are bit-identical.

use std::collections::{BTreeMap, HashMap};

use lobstore_buddy::Extent;
use lobstore_simdisk::{cast, PAGE_SIZE};

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::node::{Node, RootHdr};
use crate::object::StorageKind;
use crate::segdata::{read_seg_bytes, read_seg_pages};

/// Upper bound on one snapshot-reader refill (matches
/// [`crate::ObjectReader`]'s read-ahead cap).
const READ_AHEAD_MAX: usize = 4 << 20;

/// One archived pre-image of a META page that was overwritten in place.
struct ArchivedPage {
    /// Last committed version this content was valid for: a reader
    /// pinned at `v` wants the first archived copy with
    /// `valid_through >= v`, else the live page.
    valid_through: u64,
    content: Box<[u8; PAGE_SIZE]>,
}

/// A free that is being held back because a pinned snapshot may still
/// read the pages.
struct DeferredFree {
    /// The version whose commit superseded these pages: pins at versions
    /// `<= free_after` still need them; once every pin is newer, the
    /// free executes.
    free_after: u64,
    ext: Extent,
}

/// Per-database version state (owned by [`Db`]).
pub(crate) struct VersionState {
    /// Last committed version number. Version 0 is the empty database.
    current: u64,
    /// Pinned version → number of open snapshots at that version.
    pins: BTreeMap<u64, u32>,
    /// META page → archived pre-images, oldest first, strictly
    /// increasing `valid_through` tags.
    overlay: HashMap<u32, Vec<ArchivedPage>>,
    /// Frees held back for pinned snapshots, in the order they arrived.
    deferred: Vec<DeferredFree>,
}

impl VersionState {
    /// Version 0 (the empty database), nothing pinned, nothing deferred.
    pub fn new() -> Self {
        VersionState {
            current: 0,
            pins: BTreeMap::new(),
            overlay: HashMap::new(),
            deferred: Vec::new(),
        }
    }

    /// Is at least one snapshot pinned?
    pub fn pinned(&self) -> bool {
        !self.pins.is_empty()
    }

    fn oldest_pin(&self) -> Option<u64> {
        self.pins.keys().next().copied()
    }
}

/// A read handle pinned to a committed version. Obtain one with
/// [`Db::snapshot`]; release it with [`Db::release_snapshot`] so the
/// storage it pins can be reclaimed.
#[must_use = "an unreleased snapshot pins old versions forever"]
#[derive(Debug)]
pub struct Snapshot {
    version: u64,
}

impl Snapshot {
    /// The committed version this snapshot reads.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Db {
    /// Pin the current committed version and return a read handle for it.
    /// Reads through the returned [`Snapshot`] (see [`SnapshotReader`])
    /// observe exactly the bytes committed at this version, no matter how
    /// many updates or transactions commit afterwards.
    ///
    /// # Panics
    /// If shadowing is disabled (in-place leaf updates make old versions
    /// unreconstructible) or a transaction is open (its writes are not
    /// yet a committed version).
    pub fn snapshot(&mut self) -> Snapshot {
        assert!(
            self.config().shadowing,
            "snapshots require the shadowing discipline (DbConfig::shadowing)"
        );
        assert!(
            !self.txn_active(),
            "cannot open a snapshot inside a transaction"
        );
        let v = self.versions.current;
        *self.versions.pins.entry(v).or_insert(0) += 1;
        lobstore_obs::counter_add("core.mvcc.snapshots_opened", 1);
        self.publish_version_gauges();
        Snapshot { version: v }
    }

    /// Release a snapshot, allowing the versions it pinned to be
    /// reclaimed (archived root images dropped, deferred frees executed).
    pub fn release_snapshot(&mut self, snap: Snapshot) {
        let v = snap.version;
        match self.versions.pins.get_mut(&v) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.versions.pins.remove(&v);
            }
            None => unreachable!("snapshot {v} released but never pinned"),
        }
        lobstore_obs::counter_add("core.mvcc.snapshots_released", 1);
        self.reclaim_versions();
        self.publish_version_gauges();
    }

    /// The last committed version number.
    pub fn current_version(&self) -> u64 {
        self.versions.current
    }

    /// Number of snapshots currently pinned.
    pub fn pinned_snapshots(&self) -> usize {
        self.versions
            .pins
            .values()
            .map(|&n| cast::u32_to_usize(n))
            .sum()
    }

    /// Is `version` still pinned by at least one snapshot?
    pub(crate) fn is_pinned(&self, version: u64) -> bool {
        self.versions.pins.contains_key(&version)
    }

    /// Extents whose free is deferred for pinned snapshots (the fsck path
    /// treats these as owned by the version store, not leaked).
    pub fn deferred_extents(&self) -> Vec<Extent> {
        self.versions.deferred.iter().map(|d| d.ext).collect()
    }

    /// Archive the pre-image of META `page` before an in-place overwrite,
    /// when at least one snapshot is pinned. Called by the META write
    /// funnel for pages that were *not* allocated by the current
    /// operation — by the shadowing discipline those in-place writes are
    /// exactly the root/header updates. Idempotent per committed version:
    /// the second overwrite within one version finds the tag and skips.
    pub(crate) fn archive_page_preimage(&mut self, page: u32) {
        if !self.versions.pinned() {
            return;
        }
        let current = self.versions.current;
        if let Some(copies) = self.versions.overlay.get(&page) {
            if copies.last().is_some_and(|c| c.valid_through == current) {
                return;
            }
        }
        let content = self.peek_meta(page);
        self.versions
            .overlay
            .entry(page)
            .or_default()
            .push(ArchivedPage {
                valid_through: current,
                content,
            });
        lobstore_obs::counter_add("core.mvcc.pages_archived", 1);
    }

    /// Queue `ext` to be freed once no pin at a version `<= free_after`
    /// remains. Caller has already decided the free cannot run now.
    pub(crate) fn defer_free(&mut self, ext: Extent) {
        let free_after = self.versions.current;
        self.versions
            .deferred
            .push(DeferredFree { free_after, ext });
        lobstore_obs::counter_add("core.mvcc.frees_deferred", 1);
    }

    /// Commit point of one operation (or one transaction batch): write
    /// the allocation-log commit marker for the next version, then
    /// advance it. Called by the shadow context's `finish` (outside a
    /// transaction) and by the transaction commit.
    pub(crate) fn commit_version(&mut self) {
        let v = self.versions.current + 1;
        self.log_commit(v);
        self.bump_version();
    }

    /// End-of-operation commit for managers that run no [`crate::shadow::OpCtx`]
    /// (Starburst writes no index pages — §4.2, so its operations have
    /// no shadow context whose `finish` would commit). Inside a
    /// transaction this is a no-op: the batch commits as one version.
    pub(crate) fn op_commit(&mut self) {
        if !self.txn_active() {
            self.commit_version();
        }
    }

    /// Advance the version and reclaim whatever the oldest pin no longer
    /// needs.
    fn bump_version(&mut self) {
        self.versions.current += 1;
        lobstore_obs::counter_add("core.mvcc.versions_committed", 1);
        self.reclaim_versions();
        self.publish_version_gauges();
    }

    /// Drop overlay copies and execute deferred frees that no pin can
    /// reach any more.
    pub(crate) fn reclaim_versions(&mut self) {
        let min_pin = self.versions.oldest_pin();
        // Overlay copy tagged `t` serves only pins at versions <= t.
        let keep_tag = |t: u64| min_pin.is_some_and(|m| m <= t);
        self.versions.overlay.retain(|_, copies| {
            copies.retain(|c| keep_tag(c.valid_through));
            !copies.is_empty()
        });
        // A deferred free tagged `free_after` is still needed by pins at
        // versions <= free_after.
        let mut run = Vec::new();
        self.versions.deferred.retain(|d| {
            if keep_tag(d.free_after) {
                true
            } else {
                run.push(d.ext);
                false
            }
        });
        for ext in run {
            lobstore_obs::counter_add("core.mvcc.frees_reclaimed", 1);
            self.free_now(ext);
        }
    }

    /// Publish the version gauges: how far behind the oldest snapshot is
    /// and how much storage reclamation is waiting on it.
    fn publish_version_gauges(&self) {
        let age = self
            .versions
            .oldest_pin()
            .map_or(0, |m| self.versions.current - m);
        lobstore_obs::gauge_set("mvcc.snapshot_age", age as f64);
        lobstore_obs::gauge_set("mvcc.pinned_snapshots", self.pinned_snapshots() as f64);
        let held: u64 = self
            .versions
            .deferred
            .iter()
            .map(|d| u64::from(d.ext.pages))
            .sum();
        lobstore_obs::gauge_set("mvcc.deferred_pages", held as f64);
    }

    /// Read META `page` as of `version`: the first archived copy still
    /// valid at that version, else the live page (costed, like any read).
    pub(crate) fn versioned_meta_page<R>(
        &mut self,
        page: u32,
        version: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        let archived = self
            .versions
            .overlay
            .get(&page)
            .and_then(|copies| copies.iter().position(|c| c.valid_through >= version));
        match archived {
            Some(i) => {
                let copy = self
                    .versions
                    .overlay
                    .get(&page)
                    .and_then(|copies| copies.get(i));
                match copy {
                    Some(c) => f(&c.content[..]),
                    None => unreachable!("index found above"),
                }
            }
            None => self.with_meta_page(page, f),
        }
    }

    /// Deep verification of the version store (`paranoid` feature):
    /// overlay tags must be strictly increasing and no newer than the
    /// current version, pins must reference committed versions, and no
    /// two deferred extents may overlap (that would become a double free
    /// at reclamation).
    #[cfg(feature = "paranoid")]
    pub fn paranoid_verify_versions(&self) -> Result<()> {
        let current = self.versions.current;
        for (&page, copies) in &self.versions.overlay {
            let mut last = None;
            for c in copies {
                if c.valid_through > current {
                    return Err(LobError::InvariantViolated(format!(
                        "overlay for META page {page} tagged {} beyond current version {current}",
                        c.valid_through
                    )));
                }
                if last.is_some_and(|l| l >= c.valid_through) {
                    return Err(LobError::InvariantViolated(format!(
                        "overlay for META page {page} has non-increasing tags"
                    )));
                }
                last = Some(c.valid_through);
            }
        }
        if let Some((&v, _)) = self.versions.pins.last_key_value() {
            if v > current {
                return Err(LobError::InvariantViolated(format!(
                    "snapshot pinned at {v} beyond current version {current}"
                )));
            }
        }
        let mut exts: Vec<&Extent> = self.versions.deferred.iter().map(|d| &d.ext).collect();
        exts.sort_by_key(|e| (e.area, e.start));
        for (a, b) in exts.iter().zip(exts.iter().skip(1)) {
            if a.area == b.area && a.end() > b.start {
                return Err(LobError::InvariantViolated(format!(
                    "deferred frees overlap: {a} and {b}"
                )));
            }
        }
        for d in &self.versions.deferred {
            if d.free_after > current {
                return Err(LobError::InvariantViolated(format!(
                    "deferred free of {} tagged {} beyond current version {current}",
                    d.ext, d.free_after
                )));
            }
        }
        Ok(())
    }

    /// Forget all snapshots, archived pages, and deferred frees — the
    /// crash path. Snapshots are in-memory handles; after a reboot the
    /// committed on-disk state is the only version. Deferred frees are
    /// *not* executed: with the allocation log enabled, replay already
    /// reconstructs the committed allocator state (which has them free);
    /// without it, the directories on disk are authoritative.
    pub(crate) fn clear_version_state(&mut self) {
        self.versions = VersionState::new();
        self.publish_version_gauges();
    }
}

/// A positional cursor reading one object *as of* a pinned snapshot.
///
/// The reader resolves the object's root through the version overlay
/// once, at construction — everything reachable from that root is
/// immutable while the snapshot stays pinned, so subsequent refills are
/// ordinary costed reads (one index descent + one byte-range segment
/// read per span, exactly like [`crate::ObjectReader`]).
///
/// Unlike [`crate::ObjectReader`] the cursor does not borrow the
/// database: each call takes `&mut Db`, so readers on other threads of a
/// [`crate::SharedDb`] can interleave with a writer's operations and
/// still observe stable bytes.
pub struct SnapshotReader {
    version: u64,
    /// Parsed root: level and entries as of the snapshot.
    root: Node,
    size: u64,
    pos: u64,
    buf: Vec<u8>,
    buf_start: u64,
    /// Per-reader memo of parsed index nodes for the shared-lock scan
    /// path, which cannot reach [`Db`]'s node cache (that needs
    /// `&mut Db`). Safe because the pinned version's index pages are
    /// immutable while the snapshot is pinned. Bounded: cleared
    /// wholesale at [`READER_NODE_CACHE`] entries.
    node_memo: Vec<(u32, Node)>,
    /// Shared-lock-path read-ahead: one page-aligned span per segment,
    /// sorted by object offset, holding up to [`READ_AHEAD_MAX`] bytes
    /// of the pinned object. Spans are evicted oldest-first only under
    /// capacity pressure — an object that fits the window stays
    /// resident, so re-scans never re-enter the lock. Kept separate
    /// from `buf` so the `&mut` path stays byte-for-byte identical to
    /// the pre-span behavior.
    spans: std::collections::VecDeque<SpanBuf>,
    /// Total object bytes held in `spans`.
    span_bytes: usize,
    /// Recycled span buffers (bounded by [`SPAN_FREE_MAX`]): steady-state
    /// scans reuse allocations instead of hitting the allocator per
    /// refill.
    free: Vec<Vec<u8>>,
}

/// One read-ahead span of the shared-lock scan path: object bytes
/// `[start, start + len)` live at `data[skip..skip + len]`. `data`
/// holds the whole covering page run, so the disk read lands in it
/// directly — the only copy those bytes ever make before `BufRead`
/// hands them out.
struct SpanBuf {
    start: u64,
    skip: usize,
    len: usize,
    data: Vec<u8>,
}

impl SpanBuf {
    fn end(&self) -> u64 {
        self.start.saturating_add(self.len as u64)
    }

    /// The unread tail of this span from `pos` on, if `pos` is inside.
    fn slice_at(&self, pos: u64) -> Option<&[u8]> {
        if pos < self.start || pos >= self.end() {
            return None;
        }
        // `pos - start < len` by the check above; the constructor put
        // `len` valid bytes at `skip`.
        // loblint: allow(arith-overflow)
        let lo = self.skip + cast::to_usize(pos - self.start);
        self.data.get(lo..self.skip + self.len)
    }
}

/// Cap on recycled span buffers a [`SnapshotReader`] keeps around.
const SPAN_FREE_MAX: usize = 80;

/// Copy up to `n` bytes from the head of `src` into `out`; returns the
/// count.
fn take_into(out: &mut [u8], src: &[u8], n: usize) -> usize {
    let take = n.min(src.len()).min(out.len());
    // `take` is clamped to both slice lengths.
    // loblint: allow(panic-path)
    out[..take].copy_from_slice(&src[..take]);
    take
}

/// Cap on [`SnapshotReader::node_memo`] entries. A scan's working set is
/// one node per tree level (2-3), so a small bound never thrashes; the
/// wholesale clear keeps the lookup a linear scan over a short vec.
const READER_NODE_CACHE: usize = 32;

impl SnapshotReader {
    /// Open a snapshot cursor over the object rooted at `root_page`.
    /// Fails if the page does not hold a manager root at this version.
    pub fn new(db: &mut Db, snap: &Snapshot, root_page: u32) -> Result<SnapshotReader> {
        let v = snap.version();
        let (hdr, root) = db.versioned_meta_page(root_page, v, |p| {
            let hdr = RootHdr::read(p);
            let node = Node::read_root(p, &hdr);
            (hdr, node)
        });
        if StorageKind::from_u8(hdr.kind).is_none() {
            return Err(LobError::Corrupt(format!(
                "page {root_page} is not an object root at version {v} (kind {})",
                hdr.kind
            )));
        }
        Ok(SnapshotReader {
            version: v,
            root,
            size: hdr.size,
            pos: 0,
            buf: Vec::new(),
            buf_start: 0,
            node_memo: Vec::new(),
            spans: std::collections::VecDeque::new(),
            span_bytes: 0,
            free: Vec::new(),
        })
    }

    /// Object size at the snapshot version.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Move the cursor (clamped to the snapshot's object size).
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos.min(self.size);
    }

    /// Locate the leaf segment holding object byte `off`: returns
    /// `(segment first page, segment start offset, segment byte count)`.
    /// Index pages below the root are immutable while the snapshot is
    /// pinned, so the walk uses the ordinary (cached, costed) node reads.
    fn locate(&self, db: &mut Db, off: u64) -> (u32, u64, u64) {
        self.locate_with(off, |p| db.with_meta_node(p, Clone::clone))
    }

    /// [`Self::locate`] through a shared reference: identical descent,
    /// but [`Db`]'s node cache (which needs `&mut Db`) is replaced by the
    /// reader's own [`Self::node_memo`]. A memo hit skips the page fix
    /// entirely — sound because the pinned version's index pages cannot
    /// change, and it keeps concurrent scanners off the buffer pool's
    /// control latch on the hot descent path.
    fn locate_ref(&mut self, db: &Db, off: u64) -> (u32, u64, u64) {
        // Moved out so the descent closure can mutate the memo while
        // `locate_with` borrows the rest of the reader.
        let mut memo = std::mem::take(&mut self.node_memo);
        let out = self.locate_with(off, |p| {
            if let Some((_, node)) = memo.iter().find(|(pg, _)| *pg == p) {
                lobstore_obs::counter_add("core.nodecache.reader_hits", 1);
                return node.clone();
            }
            let node = db.read_meta_node_ref(p);
            if memo.len() >= READER_NODE_CACHE {
                memo.clear();
            }
            memo.push((p, node.clone()));
            node
        });
        self.node_memo = memo;
        out
    }

    /// The index descent itself, parameterized over how a child node is
    /// fetched (cached via `&mut Db`, or cache-bypassing via `&Db`).
    fn locate_with(&self, off: u64, mut fetch: impl FnMut(u32) -> Node) -> (u32, u64, u64) {
        debug_assert!(off < self.size);
        let mut level = self.root.level;
        let mut base = 0u64;
        let mut cursor: Option<Node> = None;
        loop {
            let node = cursor.as_ref().unwrap_or(&self.root);
            // `off >= base` along the whole descent: `base` is the byte
            // offset where the current subtree starts.
            // loblint: allow(arith-overflow)
            let (i, within) = node.find_child(off - base);
            let e = match node.entries.get(i) {
                Some(e) => *e,
                None => unreachable!("find_child returned an in-range index"),
            };
            // `within <= off` by the same subtree-offset invariant.
            // loblint: allow(arith-overflow)
            base = off - within;
            if level == 0 {
                return (e.ptr, base, e.count);
            }
            level -= 1;
            cursor = Some(fetch(e.ptr));
        }
    }

    /// Refill the read-ahead buffer at the current position: one locate,
    /// one byte-range segment read to the end of the span (capped).
    fn refill(&mut self, db: &mut Db) {
        self.assert_pinned(db);
        let (ptr, seg_start, seg_len) = self.locate(db, self.pos);
        self.refill_from(db, ptr, seg_start, seg_len);
    }

    /// [`Self::refill`] through `&Db`: the shared-lock scan path of
    /// [`crate::SharedDb::snapshot_reader`]. Unlike the `&mut` path this
    /// one reads **across segment boundaries**, batching consecutive
    /// page-aligned spans until the read-ahead covers
    /// [`READ_AHEAD_MAX`] bytes past the cursor (or the object ends).
    /// Each span still costs one descent plus one page-run segment read
    /// — the same simulated I/O in the same order — but a concurrent
    /// scanner takes the shared `SharedDb` lock once per refill instead
    /// of once per segment, and the disk read lands in the span buffer
    /// directly (single copy; the `&mut` path stages through a scratch
    /// `Vec` and copies out again).
    fn refill_ref(&mut self, db: &Db) {
        self.assert_pinned(db);
        if self.span_slice_at_pos().is_none()
            && self.spans.back().is_some_and(|s| s.end() != self.pos)
        {
            // A seek landed outside the retained window and doesn't
            // adjoin its tail: drop it and start over at the cursor.
            self.recycle_all_spans();
        }
        let mut at = self.spans.back().map_or(self.pos, SpanBuf::end);
        while at < self.size && cast::to_usize(at.saturating_sub(self.pos)) < READ_AHEAD_MAX {
            let (ptr, seg_start, seg_len) = self.locate_ref(db, at);
            // `locate_ref` returns the segment containing `at`, so
            // `seg_start <= at < seg_start + seg_len <= u64::MAX`.
            // loblint: allow(arith-overflow)
            let span_end = (seg_start + seg_len).min(self.size);
            let want = cast::to_usize(span_end - at).min(READ_AHEAD_MAX);
            self.evict_spans_for(want);
            let recycled = self.free.pop().unwrap_or_default();
            // loblint: allow(arith-overflow)
            let (data, skip) = read_seg_pages(db, ptr, at - seg_start, want as u64, recycled);
            self.spans.push_back(SpanBuf {
                start: at,
                skip,
                len: want,
                data,
            });
            // The eviction above kept `span_bytes + want` within the
            // window, far below `usize::MAX`.
            // loblint: allow(arith-overflow)
            self.span_bytes += want;
            at = at.saturating_add(want as u64);
        }
    }

    /// Evict oldest spans until `want` more bytes fit in the
    /// [`READ_AHEAD_MAX`] window. The span holding the cursor is never
    /// evicted.
    fn evict_spans_for(&mut self, want: usize) {
        while self.span_bytes.saturating_add(want) > READ_AHEAD_MAX {
            if self
                .spans
                .front()
                .is_none_or(|s| s.slice_at(self.pos).is_some())
            {
                break;
            }
            if let Some(s) = self.spans.pop_front() {
                self.span_bytes = self.span_bytes.saturating_sub(s.len);
                if self.free.len() < SPAN_FREE_MAX {
                    self.free.push(s.data);
                }
            }
        }
    }

    /// Drop the whole retained window, recycling its buffers.
    fn recycle_all_spans(&mut self) {
        while let Some(s) = self.spans.pop_front() {
            if self.free.len() < SPAN_FREE_MAX {
                self.free.push(s.data);
            }
        }
        self.span_bytes = 0;
    }

    /// The buffered bytes at the cursor from the span read-ahead, if any.
    fn span_slice_at_pos(&self) -> Option<&[u8]> {
        self.spans.iter().find_map(|s| s.slice_at(self.pos))
    }

    fn assert_pinned(&self, db: &Db) {
        assert!(
            db.is_pinned(self.version),
            "snapshot at version {} was released while a reader was open",
            self.version
        );
    }

    fn refill_from(&mut self, db: &Db, ptr: u32, seg_start: u64, seg_len: u64) {
        // Segment offsets and lengths are bounded by the object size
        // (<= MAX_OP_BYTES per op), and locate() returns the segment
        // containing `pos`, so `seg_start <= pos < seg_start + seg_len`.
        // loblint: allow(arith-overflow)
        let span_end = (seg_start + seg_len).min(self.size);
        // loblint: allow(arith-overflow)
        let want = cast::to_usize(span_end - self.pos).min(READ_AHEAD_MAX);
        // loblint: allow(arith-overflow)
        self.buf = read_seg_bytes(db, ptr, self.pos - seg_start, want as u64);
        self.buf_start = self.pos;
    }

    /// Read up to `out.len()` bytes at the cursor; returns the count
    /// (0 at end of object). Short reads happen at span boundaries,
    /// like [`std::io::Read`].
    pub fn read(&mut self, db: &mut Db, out: &mut [u8]) -> usize {
        let n = self.clamp_len(out.len());
        if n == 0 {
            return 0;
        }
        if !self.buf_covers_pos() {
            self.refill(db);
        }
        self.copy_out(out, n)
    }

    /// [`Self::read`] through `&Db` — the scan path concurrent snapshot
    /// readers use while holding only the shared side of
    /// [`crate::SharedDb`]'s lock. Short reads happen at span
    /// boundaries, like [`std::io::Read`].
    pub fn read_ref(&mut self, db: &Db, out: &mut [u8]) -> usize {
        let n = self.clamp_len(out.len());
        if n == 0 {
            return 0;
        }
        if !self.buffer_covers_pos() {
            self.refill_ref(db);
        }
        let take = match self.span_slice_at_pos() {
            Some(slice) => take_into(out, slice, n),
            // A leftover `&mut`-path buffer can also cover the cursor.
            None => return self.copy_out(out, n),
        };
        self.consume(take);
        take
    }

    /// Bytes buffered at the cursor, refilling through `&Db` if the
    /// read-ahead does not cover the current position. Empty only at
    /// end of object. Backs `BufRead::fill_buf` on
    /// [`crate::SharedSnapshotReader`].
    pub(crate) fn buffered_ref(&mut self, db: &Db) -> &[u8] {
        if self.pos >= self.size {
            return &[];
        }
        if !self.buffer_covers_pos() {
            self.refill_ref(db);
        }
        self.buffered_ref_cached()
    }

    /// The slice [`Self::buffered_ref`] just produced, without touching
    /// the database — callers use this to hand the buffer out after the
    /// shared lock has been dropped.
    pub(crate) fn buffered_ref_cached(&self) -> &[u8] {
        if self.pos >= self.size {
            return &[];
        }
        if let Some(slice) = self.span_slice_at_pos() {
            return slice;
        }
        if !self.buf_covers_pos() {
            return &[];
        }
        let lo = cast::to_usize(self.pos.saturating_sub(self.buf_start));
        self.buf.get(lo..).unwrap_or(&[])
    }

    /// Advance the cursor past bytes returned by [`Self::buffered_ref`]
    /// (`BufRead::consume`).
    pub(crate) fn consume(&mut self, n: usize) {
        self.pos = (self.pos.saturating_add(n as u64)).min(self.size);
    }

    /// Clamp a request to the bytes remaining in the object.
    fn clamp_len(&self, want: usize) -> usize {
        let remaining = self.size.saturating_sub(self.pos);
        cast::to_usize((want as u64).min(remaining))
    }

    /// Whether any read-ahead (span or `&mut`-path buffer) already holds
    /// the byte at the cursor — callers use this to skip taking any lock
    /// at all before [`Self::buffered_ref_cached`] / [`Self::consume`].
    pub(crate) fn buffer_covers_pos(&self) -> bool {
        self.buf_covers_pos() || self.span_slice_at_pos().is_some()
    }

    /// Whether the `&mut`-path read-ahead buffer covers the cursor.
    fn buf_covers_pos(&self) -> bool {
        self.pos
            .checked_sub(self.buf_start)
            .is_some_and(|d| d < self.buf.len() as u64)
    }

    fn copy_out(&mut self, out: &mut [u8], n: usize) -> usize {
        // The buffered-range check (or the refill) guarantees
        // `buf_start <= pos < buf_start + buf.len()`.
        // loblint: allow(arith-overflow)
        let lo = cast::to_usize(self.pos - self.buf_start);
        let take = n.min(self.buf.len().saturating_sub(lo));
        // `lo < buf.len()` after the refill above and `take` is clamped.
        // loblint: allow(panic-path)
        out[..take].copy_from_slice(&self.buf[lo..lo + take]);
        // `pos + take <= size <= u64::MAX` (take was clamped to
        // `size - pos` above).
        // loblint: allow(arith-overflow)
        self.pos += take as u64;
        take
    }

    /// Read from the cursor to the end of the object.
    pub fn read_to_end(&mut self, db: &mut Db) -> Vec<u8> {
        let mut out = Vec::with_capacity(cast::to_usize(self.size.saturating_sub(self.pos)));
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let n = self.read(db, &mut chunk);
            if n == 0 {
                return out;
            }
            out.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        }
    }
}
