//! The positional "count tree" shared by ESM and EOS (§2.1, §2.3).
//!
//! A B+-tree-like structure whose separators are byte counts rather than
//! keys: each `(count, ptr)` pair says how many object bytes live behind
//! `ptr`. Locating byte *N* walks one root-to-leaf path; structural
//! changes (leaf splits/merges) are confined to that path, so the cost of
//! any update is independent of the object size — the property the paper
//! credits ESM/EOS with in §4.6.
//!
//! The tree manages **index** nodes only. What a level-0 entry points at —
//! a fixed-size ESM leaf or a variable-size EOS segment — is the storage
//! manager's business; managers feed the tree replacement entries and the
//! tree keeps counts, fan-out bounds, and balance.
//!
//! All index pages live in the META area. Every modified non-root node is
//! shadowed through the operation's [`OpCtx`] (§3.3); the root is updated
//! in place and left to the buffer pool.

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::node::{Entry, Node, RootHdr, NODE_MAX_ENTRIES, ROOT_MAX_ENTRIES};
use crate::shadow::OpCtx;

/// One step of a root-to-leaf search path: the node's page and the entry
/// index taken in it. `path[0]` is always the root.
#[derive(Copy, Clone, Debug)]
pub(crate) struct PathStep {
    pub page: u32,
    pub idx: usize,
}

/// Result of a byte-offset search.
#[derive(Clone, Debug)]
pub(crate) struct LeafPos {
    /// Search path, root first, ending at the leaf's parent (a level-0
    /// node).
    pub path: Vec<PathStep>,
    /// The leaf entry found.
    pub entry: Entry,
    /// Offset of the searched byte within the leaf (equal to the leaf's
    /// byte count when the search offset was the object size — the append
    /// position).
    pub off_in_leaf: u64,
    /// Object offset at which this leaf starts.
    pub leaf_start: u64,
}

impl LeafPos {
    /// Object offset one past the leaf's last byte.
    pub fn leaf_end(&self) -> u64 {
        self.leaf_start + self.entry.count
    }
}

/// Handle to one object's count tree, anchored at its root page.
#[derive(Copy, Clone, Debug)]
pub(crate) struct PosTree {
    pub root_page: u32,
}

impl PosTree {
    /// Wrap an existing root page in a tree handle.
    pub fn new(root_page: u32) -> Self {
        PosTree { root_page }
    }

    fn root_cap(&self, db: &Db) -> usize {
        db.config().tree.root_entries.min(ROOT_MAX_ENTRIES)
    }

    fn node_cap(&self, db: &Db) -> usize {
        db.config().tree.node_entries.min(NODE_MAX_ENTRIES)
    }

    fn node_min(&self, db: &Db) -> usize {
        self.node_cap(db) / 2
    }

    // ----- page access ---------------------------------------------------

    /// Read the object header stored on the root page.
    pub fn read_hdr(&self, db: &mut Db) -> RootHdr {
        db.with_meta_root(self.root_page, |hdr, _| *hdr)
    }

    /// Write the object header back to the root page.
    pub fn write_hdr(&self, db: &mut Db, hdr: &RootHdr) {
        db.with_meta_page_mut(self.root_page, |p| hdr.write(p));
    }

    /// Root header + entries by value, for the structural write paths.
    /// Read-only walks use [`Db::with_meta_root`] directly to avoid the
    /// entry-vector clone.
    fn load_root(&self, db: &mut Db) -> (RootHdr, Node) {
        db.with_meta_root(self.root_page, |hdr, node| (*hdr, node.clone()))
    }

    fn store_root(&self, db: &mut Db, hdr: &mut RootHdr, node: &Node) {
        db.with_meta_page_mut(self.root_page, |p| node.write_root(p, hdr));
    }

    fn load_node(&self, db: &mut Db, page: u32) -> Node {
        db.with_meta_node(page, Node::clone)
    }

    fn store_node(&self, db: &mut Db, page: u32, node: &Node) {
        db.with_meta_page_mut(page, |p| node.write_page(p));
    }

    fn store_node_new(&self, db: &mut Db, page: u32, node: &Node) {
        db.with_new_meta_page(page, |p| node.write_page(p));
    }

    // ----- search ---------------------------------------------------------

    /// Find the leaf containing byte `off` (`off == size` selects the
    /// rightmost leaf at its end). Returns `None` for an empty object.
    ///
    /// # Panics
    /// If `off` exceeds the stored object size.
    pub fn descend(&self, db: &mut Db, off: u64) -> Option<LeafPos> {
        // Each step runs inside the node cache's closure accessors, so a
        // warm descent clones no entry vectors and re-parses no pages.
        let step_in = |node: &Node, rem: u64| {
            let (idx, within) = node.find_child(rem);
            (idx, within, node.entries[idx], node.level)
        };
        let mut rem = off;
        let (mut idx, mut within, mut entry, mut level) = db
            .with_meta_root(self.root_page, |_, node| {
                (!node.entries.is_empty()).then(|| step_in(node, rem))
            })?;
        let mut path = Vec::with_capacity(4);
        path.push(PathStep {
            page: self.root_page,
            idx,
        });
        while level > 0 {
            let page = entry.ptr;
            rem = within;
            (idx, within, entry, level) = db.with_meta_node(page, |node| step_in(node, rem));
            path.push(PathStep { page, idx });
        }
        lobstore_obs::counter_add("core.tree.descents", 1);
        lobstore_obs::counter_add("core.tree.descend_depth", path.len() as u64);
        Some(LeafPos {
            path,
            entry,
            off_in_leaf: within,
            leaf_start: off - within,
        })
    }

    /// [`Self::descend`], required to succeed. Callers use it only after
    /// the offset has been range-checked, so an absent leaf means the
    /// tree and the stored object size disagree — an invariant violation,
    /// not a caller error.
    pub fn try_descend(&self, db: &mut Db, off: u64) -> Result<LeafPos> {
        self.descend(db, off).ok_or_else(|| {
            LobError::InvariantViolated(format!(
                "count tree at page {} has no leaf covering offset {off}",
                self.root_page
            ))
        })
    }

    /// The rightmost leaf, if any. Uses the tree's actual entry total (not
    /// the header size, which may lag behind within an operation).
    pub fn rightmost(&self, db: &mut Db) -> Option<LeafPos> {
        let total = self.total(db);
        self.descend(db, total)
    }

    /// Total bytes currently indexed (the root's entry-count sum, which
    /// may differ from the header size in the middle of an operation).
    pub fn total(&self, db: &mut Db) -> u64 {
        db.with_meta_root(self.root_page, |_, node| node.total())
    }

    // ----- localized updates ----------------------------------------------

    /// Add `delta` to the leaf count along `path` (and to every ancestor
    /// entry). Used for in-place appends that change no pointers.
    pub fn add_count(&self, db: &mut Db, ctx: &mut OpCtx, path: &[PathStep], delta: i64) {
        let mut child_ptr_fix: Option<u32> = None;
        for (d, step) in path.iter().enumerate().rev() {
            let adjust = |e: &mut Entry, fix: Option<u32>| {
                let new = e.count as i64 + delta;
                assert!(new >= 0, "count underflow");
                e.count = new as u64;
                if let Some(p) = fix {
                    e.ptr = p;
                }
            };
            if d == 0 {
                let (mut hdr, mut node) = self.load_root(db);
                adjust(&mut node.entries[step.idx], child_ptr_fix);
                self.store_root(db, &mut hdr, &node);
            } else {
                let target = ctx.shadow_page(db, step.page);
                let mut node = self.load_node(db, target);
                adjust(&mut node.entries[step.idx], child_ptr_fix);
                self.store_node(db, target, &node);
                child_ptr_fix = (target != step.page).then_some(target);
            }
        }
    }

    /// Replace the leaf entry at the end of `path` with `repl` (one or
    /// more entries), splitting ancestors as needed. Counts along the path
    /// are recomputed automatically.
    ///
    /// The path is stale afterwards; re-descend before the next tree call.
    pub fn replace_entry(&self, db: &mut Db, ctx: &mut OpCtx, path: &[PathStep], repl: Vec<Entry>) {
        assert!(!repl.is_empty(), "use remove_entry to delete");
        self.apply(db, ctx, path, 1, repl);
    }

    /// Remove the leaf entry at the end of `path`, rebalancing ancestors
    /// (borrow from or merge with siblings) to keep non-root nodes at
    /// least half full.
    ///
    /// The path is stale afterwards; re-descend before the next tree call.
    pub fn remove_entry(&self, db: &mut Db, ctx: &mut OpCtx, path: &[PathStep]) {
        self.apply(db, ctx, path, 1, Vec::new());
    }

    /// Append `entry` after the current rightmost leaf (or as the first
    /// leaf of an empty object).
    pub fn append_entry(&self, db: &mut Db, ctx: &mut OpCtx, entry: Entry) {
        match self.rightmost(db) {
            None => {
                let (mut hdr, mut node) = self.load_root(db);
                debug_assert_eq!(node.level, 0);
                node.entries.push(entry);
                self.store_root(db, &mut hdr, &node);
            }
            Some(pos) => {
                let old = pos.entry;
                self.replace_entry(db, ctx, &pos.path, vec![old, entry]);
            }
        }
    }

    // ----- structural engine ----------------------------------------------

    /// Bottom-up splice engine: at the node addressed by the last step of
    /// `path`, replace `remove_len` entries starting at that step's index
    /// with `repl`; then walk up fixing counts/pointers, splitting
    /// overfull nodes and rebalancing underfull ones.
    fn apply(
        &self,
        db: &mut Db,
        ctx: &mut OpCtx,
        path: &[PathStep],
        remove_len: usize,
        repl: Vec<Entry>,
    ) {
        let mut start = match path.last() {
            Some(step) => step.idx,
            None => unreachable!("search paths always contain at least the root"),
        };
        let mut remove_len = remove_len;
        let mut repl = repl;
        let mut d = path.len() - 1;
        loop {
            let step = path[d];
            if d == 0 {
                self.apply_at_root(db, ctx, start, remove_len, repl);
                return;
            }
            let target = ctx.shadow_page(db, step.page);
            let mut node = self.load_node(db, target);
            node.entries.splice(start..start + remove_len, repl);
            let cap = self.node_cap(db);
            let min = self.node_min(db);

            let parent_repl: Vec<Entry>;
            let parent_start: usize;
            let parent_remove: usize;

            if node.entries.len() > cap {
                // Split into evenly filled pieces; the first keeps this page.
                let pieces = split_even(&node.entries, cap);
                let mut out = Vec::with_capacity(pieces.len());
                for (i, piece) in pieces.into_iter().enumerate() {
                    let n2 = Node {
                        level: node.level,
                        entries: piece,
                    };
                    let pg = if i == 0 { target } else { ctx.fresh_page(db) };
                    if i == 0 {
                        self.store_node(db, pg, &n2);
                    } else {
                        self.store_node_new(db, pg, &n2);
                    }
                    out.push(Entry {
                        count: n2.total(),
                        ptr: pg,
                    });
                }
                parent_repl = out;
                parent_start = path[d - 1].idx;
                parent_remove = 1;
            } else if node.entries.len() < min {
                // Underflow: rebalance with a sibling, if one exists.
                let parent_node = if d - 1 == 0 {
                    self.load_root(db).1
                } else {
                    self.load_node(db, path[d - 1].page)
                };
                let pidx = path[d - 1].idx;
                if parent_node.entries.len() < 2 {
                    // No sibling (parent is a 1-entry root): tolerate the
                    // underflow; root collapse will absorb it eventually.
                    self.store_node(db, target, &node);
                    parent_repl = vec![Entry {
                        count: node.total(),
                        ptr: target,
                    }];
                    parent_start = pidx;
                    parent_remove = 1;
                } else {
                    let (lo, hi) = if pidx > 0 {
                        (pidx - 1, pidx)
                    } else {
                        (pidx, pidx + 1)
                    };
                    let sib_is_left = pidx > 0;
                    let sib_old = parent_node.entries[if sib_is_left { lo } else { hi }].ptr;
                    let sib_target = ctx.shadow_page(db, sib_old);
                    let sib = self.load_node(db, sib_target);
                    debug_assert_eq!(sib.level, node.level);
                    let mut combined = Vec::with_capacity(sib.entries.len() + node.entries.len());
                    if sib_is_left {
                        combined.extend_from_slice(&sib.entries);
                        combined.extend_from_slice(&node.entries);
                    } else {
                        combined.extend_from_slice(&node.entries);
                        combined.extend_from_slice(&sib.entries);
                    }
                    if combined.len() <= cap {
                        // Merge into the left page; free the right one.
                        let left_pg = if sib_is_left { sib_target } else { target };
                        let right_pg = if sib_is_left { target } else { sib_target };
                        let merged = Node {
                            level: node.level,
                            entries: combined,
                        };
                        self.store_node(db, left_pg, &merged);
                        ctx.free_page_later(right_pg);
                        parent_repl = vec![Entry {
                            count: merged.total(),
                            ptr: left_pg,
                        }];
                    } else {
                        // Borrow: redistribute evenly across both pages.
                        let mid = combined.len() / 2;
                        let right_entries = combined.split_off(mid);
                        let (left_pg, right_pg) = if sib_is_left {
                            (sib_target, target)
                        } else {
                            (target, sib_target)
                        };
                        let left = Node {
                            level: node.level,
                            entries: combined,
                        };
                        let right = Node {
                            level: node.level,
                            entries: right_entries,
                        };
                        self.store_node(db, left_pg, &left);
                        self.store_node(db, right_pg, &right);
                        parent_repl = vec![
                            Entry {
                                count: left.total(),
                                ptr: left_pg,
                            },
                            Entry {
                                count: right.total(),
                                ptr: right_pg,
                            },
                        ];
                    }
                    parent_start = lo;
                    parent_remove = 2;
                }
            } else {
                // Plain store; propagate count and (possibly new) pointer.
                self.store_node(db, target, &node);
                parent_repl = vec![Entry {
                    count: node.total(),
                    ptr: target,
                }];
                parent_start = path[d - 1].idx;
                parent_remove = 1;
            }
            start = parent_start;
            remove_len = parent_remove;
            repl = parent_repl;
            d -= 1;
        }
    }

    /// Terminal step of [`Self::apply`] at the root: splice, then grow the
    /// tree on overflow or shrink it while the root has a single child.
    fn apply_at_root(
        &self,
        db: &mut Db,
        ctx: &mut OpCtx,
        start: usize,
        remove_len: usize,
        repl: Vec<Entry>,
    ) {
        let (mut hdr, mut node) = self.load_root(db);
        node.entries.splice(start..start + remove_len, repl);
        let rcap = self.root_cap(db);
        if node.entries.len() > rcap {
            // Push everything one level down (§2.1: the tree grows at the
            // root, like a B-tree).
            let pieces = split_even(&node.entries, self.node_cap(db));
            let mut out = Vec::with_capacity(pieces.len());
            for piece in pieces {
                let child = Node {
                    level: node.level,
                    entries: piece,
                };
                let pg = ctx.fresh_page(db);
                self.store_node_new(db, pg, &child);
                out.push(Entry {
                    count: child.total(),
                    ptr: pg,
                });
            }
            node.entries = out;
            node.level += 1;
        }
        // Height shrink: absorb a lone internal child into the root —
        // but only if it fits (the root holds fewer pairs than an
        // interior node because of its larger header).
        while node.level > 0 && node.entries.len() == 1 {
            let child_pg = node.entries[0].ptr;
            let child = self.load_node(db, child_pg);
            if child.entries.len() > rcap {
                break;
            }
            ctx.free_page_later(child_pg);
            node = child;
        }
        self.store_root(db, &mut hdr, &node);
    }

    /// Like [`Self::collect_leaves`], but reading index pages through the
    /// buffer pool so the walk is I/O-costed — used by `destroy`, which
    /// really does have to read the index to find the segments.
    pub fn collect_leaves_costed(&self, db: &mut Db) -> Vec<(u64, Entry)> {
        let (_, root) = self.load_root(db);
        let mut out = Vec::new();
        let mut off = 0u64;
        // Depth-first, preserving left-to-right order.
        fn walk(
            tree: &PosTree,
            db: &mut Db,
            node: &Node,
            off: &mut u64,
            out: &mut Vec<(u64, Entry)>,
        ) {
            for e in &node.entries {
                if node.level == 0 {
                    out.push((*off, *e));
                    *off += e.count;
                } else {
                    let child = tree.load_node(db, e.ptr);
                    walk(tree, db, &child, off, out);
                }
            }
        }
        walk(self, db, &root, &mut off, &mut out);
        out
    }

    // ----- whole-tree walks (cost-free, for metrics and verification) -----

    /// Every leaf entry with its object start offset, left to right.
    /// Cost-free (peeks pages).
    pub fn collect_leaves(&self, db: &Db) -> Vec<(u64, Entry)> {
        let mut out = Vec::new();
        let page = db.peek_meta(self.root_page);
        let hdr = RootHdr::read(&page[..]);
        let node = Node::read_root(&page[..], &hdr);
        let mut off = 0u64;
        self.walk_leaves(db, &node, &mut off, &mut out);
        out
    }

    fn walk_leaves(&self, db: &Db, node: &Node, off: &mut u64, out: &mut Vec<(u64, Entry)>) {
        for e in &node.entries {
            if node.level == 0 {
                out.push((*off, *e));
                *off += e.count;
            } else {
                let child = Node::read_page(&db.peek_meta(e.ptr)[..]);
                self.walk_leaves(db, &child, off, out);
            }
        }
    }

    /// Total index pages of this tree (root included). Cost-free.
    pub fn index_page_count(&self, db: &Db) -> u64 {
        let page = db.peek_meta(self.root_page);
        let hdr = RootHdr::read(&page[..]);
        let node = Node::read_root(&page[..], &hdr);
        1 + self.count_below(db, &node)
    }

    fn count_below(&self, db: &Db, node: &Node) -> u64 {
        if node.level == 0 {
            return 0;
        }
        node.entries
            .iter()
            .map(|e| {
                let child = Node::read_page(&db.peek_meta(e.ptr)[..]);
                1 + self.count_below(db, &child)
            })
            .sum()
    }

    /// All index pages except the root (for `destroy`). Cost-free
    /// discovery; the caller frees them.
    pub fn internal_pages(&self, db: &Db) -> Vec<u32> {
        let page = db.peek_meta(self.root_page);
        let hdr = RootHdr::read(&page[..]);
        let node = Node::read_root(&page[..], &hdr);
        let mut out = Vec::new();
        self.collect_internal(db, &node, &mut out);
        out
    }

    fn collect_internal(&self, db: &Db, node: &Node, out: &mut Vec<u32>) {
        if node.level == 0 {
            return;
        }
        for e in &node.entries {
            out.push(e.ptr);
            let child = Node::read_page(&db.peek_meta(e.ptr)[..]);
            self.collect_internal(db, &child, out);
        }
    }

    /// Structural checks: count consistency, level monotonicity, fan-out
    /// bounds, half-full rule for non-root nodes.
    pub fn check_invariants(&self, db: &Db) -> Result<()> {
        let page = db.peek_meta(self.root_page);
        let hdr = RootHdr::read(&page[..]);
        let root = Node::read_root(&page[..], &hdr);
        if root.entries.len() > self.root_cap(db) {
            return Err(LobError::InvariantViolated(format!(
                "root holds {} entries, cap {}",
                root.entries.len(),
                self.root_cap(db)
            )));
        }
        if root.level > 0 && root.entries.len() < 2 {
            // A lone child is tolerated only when it cannot be absorbed
            // into the root (the root's pair capacity is slightly smaller
            // than an interior node's).
            let child = Node::read_page(&db.peek_meta(root.entries[0].ptr)[..]);
            if child.entries.len() <= self.root_cap(db) {
                return Err(LobError::InvariantViolated(
                    "internal root with a lone absorbable child".into(),
                ));
            }
        }
        let total = self.check_node(db, &root, true)?;
        if total != hdr.size {
            return Err(LobError::InvariantViolated(format!(
                "tree total {} != header size {}",
                total, hdr.size
            )));
        }
        Ok(())
    }

    fn check_node(&self, db: &Db, node: &Node, is_root: bool) -> Result<u64> {
        if !is_root {
            let (cap, min) = (self.node_cap(db), self.node_min(db));
            if node.entries.len() > cap {
                return Err(LobError::InvariantViolated(format!(
                    "node with {} entries over cap {cap}",
                    node.entries.len()
                )));
            }
            if node.entries.len() < min {
                return Err(LobError::InvariantViolated(format!(
                    "node with {} entries under min {min}",
                    node.entries.len()
                )));
            }
        }
        let mut total = 0u64;
        for e in &node.entries {
            if node.level == 0 {
                total += e.count;
            } else {
                let child = Node::read_page(&db.peek_meta(e.ptr)[..]);
                if child.level != node.level - 1 {
                    return Err(LobError::InvariantViolated(format!(
                        "child level {} under node level {}",
                        child.level, node.level
                    )));
                }
                let sub = self.check_node(db, &child, false)?;
                if sub != e.count {
                    return Err(LobError::InvariantViolated(format!(
                        "entry count {} != subtree total {sub}",
                        e.count
                    )));
                }
                total += sub;
            }
        }
        Ok(total)
    }
}

/// Split `entries` into `ceil(n/cap)` consecutive pieces with sizes as
/// even as possible (difference ≤ 1), so every piece is at least half a
/// node when `n > cap`.
fn split_even(entries: &[Entry], cap: usize) -> Vec<Vec<Entry>> {
    let n = entries.len();
    let k = n.div_ceil(cap);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut pos = 0;
    for i in 0..k {
        let take = base + usize::from(i < extra);
        out.push(entries[pos..pos + take].to_vec());
        pos += take;
    }
    debug_assert_eq!(pos, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{DbConfig, TreeConfig};
    use crate::node::RootHdr;

    /// Build a db with tiny fan-out and an initialized empty root.
    fn setup(fanout: usize) -> (Db, PosTree) {
        let cfg = DbConfig {
            tree: TreeConfig::tiny(fanout),
            ..DbConfig::default()
        };
        let mut db = Db::new(cfg);
        let root = db.alloc_meta_page();
        let hdr = RootHdr {
            magic: 0x7E57,
            kind: 0,
            level: 0,
            n_entries: 0,
            size: 0,
            params: 0,
            last_seg_alloc: 0,
            last_seg_ptr: 0,
        };
        db.with_new_meta_page(root, |p| hdr.write(p));
        (db, PosTree::new(root))
    }

    fn e(count: u64, ptr: u32) -> Entry {
        Entry { count, ptr }
    }

    /// Append n leaves of `sz` bytes each and keep header size in sync.
    fn build(db: &mut Db, tree: &PosTree, n: u32, sz: u64) {
        for i in 0..n {
            let mut ctx = OpCtx::new();
            tree.append_entry(db, &mut ctx, e(sz, 1000 + i));
            let mut hdr = tree.read_hdr(db);
            hdr.size += sz;
            tree.write_hdr(db, &hdr);
            ctx.finish(db);
        }
    }

    #[test]
    fn empty_tree_descends_to_none() {
        let (mut db, tree) = setup(4);
        assert!(tree.descend(&mut db, 0).is_none());
        tree.check_invariants(&db).unwrap();
    }

    #[test]
    fn append_entries_until_the_tree_grows() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 20, 10);
        tree.check_invariants(&db).unwrap();
        let hdr = tree.read_hdr(&mut db);
        assert_eq!(hdr.size, 200);
        assert!(hdr.level >= 1, "fan-out 4 with 20 leaves must grow");
        let leaves = tree.collect_leaves(&db);
        assert_eq!(leaves.len(), 20);
        assert_eq!(leaves[7], (70, e(10, 1007)));
        assert!(tree.index_page_count(&db) > 1);
    }

    #[test]
    fn descend_finds_correct_leaf_and_offsets() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 20, 10);
        for off in [0u64, 9, 10, 55, 199] {
            let pos = tree.descend(&mut db, off).unwrap();
            assert_eq!(pos.leaf_start, (off / 10) * 10);
            assert_eq!(pos.off_in_leaf, off % 10);
            assert_eq!(pos.entry.ptr, 1000 + (off / 10) as u32);
        }
        // Append position.
        let pos = tree.descend(&mut db, 200).unwrap();
        assert_eq!(pos.off_in_leaf, 10);
        assert_eq!(pos.entry.ptr, 1019);
    }

    #[test]
    fn add_count_updates_every_level() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 20, 10);
        let pos = tree.descend(&mut db, 55).unwrap();
        let mut ctx = OpCtx::new();
        tree.add_count(&mut db, &mut ctx, &pos.path, 7);
        let mut hdr = tree.read_hdr(&mut db);
        hdr.size += 7;
        tree.write_hdr(&mut db, &hdr);
        ctx.finish(&mut db);
        tree.check_invariants(&db).unwrap();
        let leaves = tree.collect_leaves(&db);
        assert_eq!(leaves[5].1.count, 17);
    }

    #[test]
    fn add_count_shadows_non_root_path_pages() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 20, 10);
        let pos = tree.descend(&mut db, 0).unwrap();
        assert!(pos.path.len() >= 2);
        let old_pages: Vec<u32> = pos.path.iter().skip(1).map(|s| s.page).collect();
        let mut ctx = OpCtx::new();
        tree.add_count(&mut db, &mut ctx, &pos.path, 1);
        let mut hdr = tree.read_hdr(&mut db);
        hdr.size += 1;
        tree.write_hdr(&mut db, &hdr);
        ctx.finish(&mut db);
        tree.check_invariants(&db).unwrap();
        // The path below the root was relocated by shadowing.
        let pos2 = tree.descend(&mut db, 0).unwrap();
        let new_pages: Vec<u32> = pos2.path.iter().skip(1).map(|s| s.page).collect();
        assert_ne!(old_pages, new_pages);
    }

    #[test]
    fn replace_entry_with_many_splits_leaf_parent() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 4, 10);
        // Replace leaf 1 with five new leaves: forces a split at fan-out 4.
        let pos = tree.descend(&mut db, 10).unwrap();
        let mut ctx = OpCtx::new();
        let repl: Vec<Entry> = (0..5).map(|i| e(2, 2000 + i)).collect();
        tree.replace_entry(&mut db, &mut ctx, &pos.path, repl);
        let mut hdr = tree.read_hdr(&mut db);
        hdr.size = hdr.size - 10 + 10;
        tree.write_hdr(&mut db, &hdr);
        ctx.finish(&mut db);
        tree.check_invariants(&db).unwrap();
        let leaves = tree.collect_leaves(&db);
        assert_eq!(leaves.len(), 8);
        assert_eq!(leaves[1].1, e(2, 2000));
        assert_eq!(leaves[5].1, e(2, 2004));
        assert_eq!(leaves[6], (20, e(10, 1002)));
    }

    #[test]
    fn remove_entries_shrinks_back_to_flat_root() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 20, 10);
        // Remove leaves one at a time from the front.
        for remaining in (1..=20u64).rev() {
            let pos = tree.descend(&mut db, 0).unwrap();
            let mut ctx = OpCtx::new();
            tree.remove_entry(&mut db, &mut ctx, &pos.path);
            let mut hdr = tree.read_hdr(&mut db);
            hdr.size -= 10;
            tree.write_hdr(&mut db, &hdr);
            ctx.finish(&mut db);
            tree.check_invariants(&db)
                .unwrap_or_else(|e| panic!("at {remaining} leaves left: {e}"));
        }
        let hdr = tree.read_hdr(&mut db);
        assert_eq!(hdr.size, 0);
        assert_eq!(hdr.level, 0, "tree collapsed");
        assert!(tree.collect_leaves(&db).is_empty());
        assert_eq!(tree.index_page_count(&db), 1, "only the root remains");
    }

    #[test]
    fn random_mixed_structure_ops_stay_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (mut db, tree) = setup(6);
        let mut rng = StdRng::seed_from_u64(42);
        let mut model: Vec<(u64, u32)> = Vec::new(); // (count, ptr)
        let mut next_ptr = 1u32;
        for step in 0..400 {
            let total: u64 = model.iter().map(|x| x.0).sum();
            let do_insert = model.is_empty() || rng.gen_bool(0.55);
            let mut ctx = OpCtx::new();
            if do_insert {
                let count = rng.gen_range(1..=50u64);
                let ptr = next_ptr;
                next_ptr += 1;
                if model.is_empty() || rng.gen_bool(0.3) {
                    tree.append_entry(&mut db, &mut ctx, e(count, ptr));
                    model.push((count, ptr));
                } else {
                    // Replace a random leaf with [old, new] (a split).
                    let i = rng.gen_range(0..model.len());
                    let off: u64 = model[..i].iter().map(|x| x.0).sum();
                    let pos = tree.descend(&mut db, off).unwrap();
                    assert_eq!(pos.entry.ptr, model[i].1, "model desync at step {step}");
                    let old = pos.entry;
                    tree.replace_entry(&mut db, &mut ctx, &pos.path, vec![old, e(count, ptr)]);
                    model.insert(i + 1, (count, ptr));
                }
                let mut hdr = tree.read_hdr(&mut db);
                hdr.size = total + count;
                tree.write_hdr(&mut db, &hdr);
            } else {
                let i = rng.gen_range(0..model.len());
                let off: u64 = model[..i].iter().map(|x| x.0).sum();
                let pos = tree.descend(&mut db, off).unwrap();
                assert_eq!(pos.entry.ptr, model[i].1);
                tree.remove_entry(&mut db, &mut ctx, &pos.path);
                let removed = model.remove(i).0;
                let mut hdr = tree.read_hdr(&mut db);
                hdr.size = total - removed;
                tree.write_hdr(&mut db, &hdr);
            }
            ctx.finish(&mut db);
            tree.check_invariants(&db)
                .unwrap_or_else(|err| panic!("step {step}: {err}"));
            let leaves = tree.collect_leaves(&db);
            let got: Vec<(u64, u32)> = leaves.iter().map(|(_, e)| (e.count, e.ptr)).collect();
            assert_eq!(got, model, "leaf sequence mismatch at step {step}");
        }
    }

    #[test]
    fn meta_pages_are_not_leaked() {
        let (mut db, tree) = setup(4);
        build(&mut db, &tree, 50, 10);
        for _ in 0..50 {
            let pos = tree.descend(&mut db, 0).unwrap();
            let mut ctx = OpCtx::new();
            tree.remove_entry(&mut db, &mut ctx, &pos.path);
            let mut hdr = tree.read_hdr(&mut db);
            hdr.size -= 10;
            tree.write_hdr(&mut db, &hdr);
            ctx.finish(&mut db);
        }
        assert_eq!(
            db.meta_pages_allocated(),
            1,
            "all index pages except the root returned to the allocator"
        );
    }

    #[test]
    fn split_even_bounds() {
        let entries: Vec<Entry> = (0..23).map(|i| e(1, i)).collect();
        let pieces = split_even(&entries, 10);
        assert_eq!(pieces.len(), 3);
        let sizes: Vec<usize> = pieces.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert!(sizes.iter().all(|&s| (7..=8).contains(&s)));
        // Order preserved.
        assert_eq!(pieces[0][0].ptr, 0);
        assert_eq!(pieces[2].last().unwrap().ptr, 22);
    }
}
