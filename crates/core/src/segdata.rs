//! Byte-level helpers over leaf segments, shared by the three managers.
//!
//! These encapsulate the paper's write discipline (§3.3, §3.4):
//!
//! * reads for internal copies are page-grained, one I/O call per segment;
//! * a segment write moves only the pages that actually hold bytes
//!   ("only the blocks that are actually dirty are written, sequentially");
//! * an in-place append reads the rightmost partial page (if any), then
//!   writes the pages containing new bytes with a single sequential call.

use lobstore_buddy::Extent;
use lobstore_simdisk::{cast, pages_for_bytes, AreaId, PageId, PAGE_SIZE, PAGE_SIZE_U64};

use crate::db::Db;

/// Read `len` bytes starting at byte `from` of the segment at `ptr`
/// (LEAF area), using one page-grained I/O call.
///
/// Takes `&Db`: segment reads only touch the pool's internally
/// synchronized read path, so snapshot scanners can run them while
/// holding just the shared side of [`crate::SharedDb`]'s lock.
pub(crate) fn read_seg_bytes(db: &Db, ptr: u32, from: u64, len: u64) -> Vec<u8> {
    if len == 0 {
        return Vec::new();
    }
    lobstore_obs::counter_add("core.seg.reads", 1);
    let first_page = cast::to_u32(from / PAGE_SIZE_U64);
    let last_page = cast::to_u32((from + len - 1) / PAGE_SIZE_U64);
    let n_pages = last_page - first_page + 1;
    let mut scratch = vec![0u8; cast::u32_to_usize(n_pages) * PAGE_SIZE];
    db.pool
        .read_pages(AreaId::LEAF, ptr + first_page, n_pages, &mut scratch);
    let skip = cast::to_usize(from % PAGE_SIZE_U64);
    scratch[skip..skip + cast::to_usize(len)].to_vec()
}

/// Like [`read_seg_bytes`] but page-direct into a caller-recycled
/// buffer: the whole covering page run is read with the same single
/// I/O call, landing in `buf` directly. Returns `(buf, skip)` — the
/// requested bytes are `buf[skip..skip + len]`. This is the shared-lock
/// scan path's only per-byte copy; [`read_seg_bytes`] stages through a
/// scratch `Vec` and copies again.
pub(crate) fn read_seg_pages(
    db: &Db,
    ptr: u32,
    from: u64,
    len: u64,
    mut buf: Vec<u8>,
) -> (Vec<u8>, usize) {
    debug_assert!(len > 0);
    lobstore_obs::counter_add("core.seg.reads", 1);
    let first_page = cast::to_u32(from / PAGE_SIZE_U64);
    // `from + len - 1` is the last requested byte; callers stay inside
    // the segment, far below `u64::MAX`.
    let last_page = cast::to_u32((from + len - 1) / PAGE_SIZE_U64);
    // `last_page >= first_page` (both derive from the same range) and
    // page counts are far below `u32::MAX`.
    // loblint: allow(arith-overflow)
    let n_pages = last_page - first_page + 1;
    let need = cast::u32_to_usize(n_pages) * PAGE_SIZE;
    // Recycled buffers are usually already the right size; `resize`
    // only zero-fills growth.
    if buf.len() != need {
        buf.resize(need, 0);
    }
    db.pool
        .read_pages(AreaId::LEAF, ptr + first_page, n_pages, &mut buf);
    (buf, cast::to_usize(from % PAGE_SIZE_U64))
}

/// Allocate a segment of `alloc_pages` pages and write `bytes` into its
/// head with one I/O call (only `ceil(bytes/page)` pages are transferred).
/// Returns the extent.
pub(crate) fn write_new_seg(db: &mut Db, alloc_pages: u32, bytes: &[u8]) -> Extent {
    debug_assert!(!bytes.is_empty());
    debug_assert!(pages_for_bytes(bytes.len() as u64) <= alloc_pages);
    lobstore_obs::counter_add("core.seg.writes", 1);
    let ext = db.alloc_leaf(alloc_pages);
    db.pool.write_direct(AreaId::LEAF, ext.start, bytes);
    ext
}

/// Append `new` after the first `old_len` bytes of the segment at `ptr`,
/// in place. Reads the partial boundary page if `old_len` is not
/// page-aligned, then writes all pages containing new bytes with one
/// sequential call — exactly the paper's append cost (§4.2).
pub(crate) fn append_in_place(db: &mut Db, ptr: u32, old_len: u64, new: &[u8]) {
    debug_assert!(!new.is_empty());
    lobstore_obs::counter_add("core.seg.writes", 1);
    let first_page = cast::to_u32(old_len / PAGE_SIZE_U64);
    let in_page = cast::to_usize(old_len % PAGE_SIZE_U64);
    let mut buf = Vec::with_capacity(in_page + new.len());
    if in_page > 0 {
        let r = db.pool.fix(PageId::new(AreaId::LEAF, ptr + first_page));
        db.pool
            .with_page(r, |p| buf.extend_from_slice(&p[..in_page]));
        db.pool.unfix(r);
    }
    buf.extend_from_slice(new);
    db.pool.write_direct(AreaId::LEAF, ptr + first_page, &buf);
}

/// Overwrite bytes `[from, from + patch.len())` of the segment at `ptr`
/// in place, transferring only the affected pages: boundary pages are
/// read first (if partially covered) so their surrounding bytes survive.
pub(crate) fn patch_in_place(db: &mut Db, ptr: u32, from: u64, patch: &[u8]) {
    debug_assert!(!patch.is_empty());
    lobstore_obs::counter_add("core.seg.writes", 1);
    let first_page = cast::to_u32(from / PAGE_SIZE_U64);
    let end = from + patch.len() as u64;
    let head_skip = cast::to_usize(from % PAGE_SIZE_U64);
    let tail_cut = cast::to_usize(end % PAGE_SIZE_U64);
    let mut buf = Vec::with_capacity(head_skip + patch.len());
    if head_skip > 0 {
        let r = db.pool.fix(PageId::new(AreaId::LEAF, ptr + first_page));
        db.pool
            .with_page(r, |p| buf.extend_from_slice(&p[..head_skip]));
        db.pool.unfix(r);
    }
    buf.extend_from_slice(patch);
    if tail_cut > 0 {
        let last_page = cast::to_u32((end - 1) / PAGE_SIZE_U64);
        let r = db.pool.fix(PageId::new(AreaId::LEAF, ptr + last_page));
        db.pool
            .with_page(r, |p| buf.extend_from_slice(&p[tail_cut..]));
        db.pool.unfix(r);
    }
    db.pool.write_direct(AreaId::LEAF, ptr + first_page, &buf);
}

/// Split `total` into even pieces of at most `cap` each (piece count
/// `ceil(total/cap)`, sizes differing by at most 1). Every piece is at
/// least `cap/2` when `total > cap` — the half-full leaf rule.
pub(crate) fn even_sizes(total: u64, cap: u64) -> Vec<u64> {
    assert!(total > 0);
    let k = total.div_ceil(cap);
    let base = total / k;
    let extra = total % k;
    (0..k).map(|i| base + u64::from(i < extra)).collect()
}

/// The ESM append redistribution rule (§4.2): all but the two rightmost
/// leaves are full; the remainder is split evenly over the last two
/// leaves (each ≥ half full), unless it fits in a single leaf.
pub(crate) fn append_sizes(total: u64, cap: u64) -> Vec<u64> {
    assert!(total > 0);
    let mut out = Vec::new();
    let mut t = total;
    while t > 2 * cap {
        out.push(cap);
        t -= cap;
    }
    if t > cap {
        out.push(t.div_ceil(2));
        out.push(t / 2);
    } else {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobstore_simdisk::IoStats;

    #[test]
    fn even_sizes_cover_and_balance() {
        assert_eq!(even_sizes(10, 4), vec![4, 3, 3]);
        assert_eq!(even_sizes(8, 4), vec![4, 4]);
        assert_eq!(even_sizes(3, 4), vec![3]);
        assert_eq!(even_sizes(9, 4), vec![3, 3, 3]);
        // half-full rule when total > cap
        for total in 5..100u64 {
            let v = even_sizes(total, 4);
            assert_eq!(v.iter().sum::<u64>(), total);
            assert!(v.iter().all(|&s| (2..=4).contains(&s)), "{total}: {v:?}");
        }
    }

    #[test]
    fn append_sizes_follow_the_paper_rule() {
        let cap = 100;
        assert_eq!(append_sizes(50, cap), vec![50]);
        assert_eq!(append_sizes(100, cap), vec![100]);
        assert_eq!(append_sizes(150, cap), vec![75, 75]);
        assert_eq!(append_sizes(250, cap), vec![100, 75, 75]);
        assert_eq!(append_sizes(460, cap), vec![100, 100, 100, 80, 80]);
        // exact multiples end with two full leaves
        assert_eq!(append_sizes(400, cap), vec![100, 100, 100, 100]);
        for total in 101..1000u64 {
            let v = append_sizes(total, cap);
            assert_eq!(v.iter().sum::<u64>(), total);
            assert!(v[..v.len() - 2].iter().all(|&s| s == cap));
            assert!(v[v.len() - 2..].iter().all(|&s| s >= cap / 2 && s <= cap));
        }
    }

    #[test]
    fn write_then_read_seg_roundtrip() {
        let mut db = Db::paper_default();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 241) as u8).collect();
        let ext = write_new_seg(&mut db, 4, &data);
        assert_eq!(ext.pages, 4);
        // One write call, 3 pages (only pages holding bytes).
        let s = db.io_stats();
        assert_eq!(s.write_calls, 1);
        assert_eq!(s.pages_written, 3);
        let back = read_seg_bytes(&db, ext.start, 0, data.len() as u64);
        assert_eq!(back, data);
        let mid = read_seg_bytes(&db, ext.start, 5_000, 2_000);
        assert_eq!(mid[..], data[5_000..7_000]);
    }

    #[test]
    fn append_in_place_reads_partial_page_once() {
        let mut db = Db::paper_default();
        let ext = write_new_seg(&mut db, 4, &vec![7u8; 5_000]);
        db.reset_io_stats();
        append_in_place(&mut db, ext.start, 5_000, &vec![9u8; 6_000]);
        let s = db.io_stats();
        // Partial page 1 read (1 call), pages 1..3 written (1 call).
        assert_eq!(s.read_calls, 1);
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.write_calls, 1);
        assert_eq!(s.pages_written, 2);
        let back = read_seg_bytes(&db, ext.start, 0, 11_000);
        assert!(back[..5_000].iter().all(|&b| b == 7));
        assert!(back[5_000..].iter().all(|&b| b == 9));
    }

    #[test]
    fn append_in_place_aligned_needs_no_read() {
        let mut db = Db::paper_default();
        let ext = write_new_seg(&mut db, 4, &[7u8; PAGE_SIZE]);
        db.reset_io_stats();
        append_in_place(&mut db, ext.start, PAGE_SIZE as u64, &[9u8; 100]);
        let s = db.io_stats();
        assert_eq!(s.read_calls, 0, "aligned append reads nothing");
        assert_eq!(
            s,
            IoStats {
                write_calls: 1,
                pages_written: 1,
                time_us: 37_000,
                ..s
            }
        );
    }

    #[test]
    fn patch_in_place_preserves_surrounding_bytes() {
        let mut db = Db::paper_default();
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        let ext = write_new_seg(&mut db, 4, &data);
        db.reset_io_stats();
        patch_in_place(&mut db, ext.start, 5_000, &vec![0xEEu8; 1_000]);
        let back = read_seg_bytes(&db, ext.start, 0, data.len() as u64);
        assert_eq!(back[..5_000], data[..5_000]);
        assert!(back[5_000..6_000].iter().all(|&b| b == 0xEE));
        assert_eq!(back[6_000..], data[6_000..]);
    }
}
