//! The Starburst long-field manager (§2.2, §3.5).
//!
//! A long field is a sequence of extents whose sizes **double** until a
//! maximum segment size is reached (then max-size segments repeat); the
//! last segment is trimmed. The descriptor is flat: one root page with an
//! array of segment pointers — there is no tree, so reads and appends
//! never touch index pages.
//!
//! The price is paid by length-changing updates: inserting (deleting)
//! bytes in the middle requires **copying every segment from the affected
//! one rightward** (including it, because of shadowing) into a new set of
//! segments, streamed through a 512 KB staging buffer (§3.5). Once an
//! object has been updated, its size is known, so the rewrite uses
//! maximum-size segments with the last one trimmed — which is why the
//! steady-state update cost equals a whole-object copy (Table 3).
//!
//! Departure from the paper, documented in DESIGN.md: the descriptor
//! stores an explicit `(bytes, pointer)` pair per segment (8 bytes)
//! instead of deriving intermediate sizes from the growth pattern; the
//! I/O behaviour is identical (the descriptor is still one page, up to
//! 507 segments ≈ 16 GB of max-size segments).

use lobstore_buddy::Extent;
use lobstore_simdisk::{cast, pages_for_bytes, AreaId, PageId, PAGE_SIZE, PAGE_SIZE_U64};

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::node::{Entry, Node, RootHdr, ROOT_MAX_ENTRIES};
use crate::object::{LargeObject, StorageKind, Utilization};
use crate::segdata::{append_in_place, patch_in_place};
use crate::MAX_OP_BYTES;

const STAR_MAGIC: u32 = 0x5354_4152; // "STAR"
const KIND_STARBURST: u8 = 3;
/// The 512 KB copy buffer of §3.5, in pages.
const STAGING_PAGES: u32 = 128;

/// Creation parameters for a Starburst long field.
#[derive(Copy, Clone, Debug)]
pub struct StarburstParams {
    /// Maximum segment size in pages. The paper's space manager supports
    /// 32 MB segments (8192 × 4 KB pages, §3.1).
    pub max_seg_pages: u32,
    /// Whether the eventual size is known in advance; if so, maximum-size
    /// segments are used from the start (§2.2).
    pub known_size: bool,
}

impl Default for StarburstParams {
    fn default() -> Self {
        StarburstParams {
            max_seg_pages: 8192,
            known_size: false,
        }
    }
}

/// Handle to one Starburst long field.
#[derive(Debug)]
pub struct StarburstObject {
    root: u32,
    max_seg_pages: u32,
    known_size: bool,
}

impl StarburstObject {
    /// Create a new, empty Starburst long field.
    pub fn create(db: &mut Db, params: StarburstParams) -> Result<Self> {
        if params.max_seg_pages == 0 || params.max_seg_pages > db.max_segment_pages() {
            return Err(LobError::Corrupt(format!(
                "max segment of {} pages out of range",
                params.max_seg_pages
            )));
        }
        let root = db.alloc_meta_page();
        let hdr = RootHdr {
            magic: STAR_MAGIC,
            kind: KIND_STARBURST,
            level: 0,
            n_entries: 0,
            size: 0,
            params: u64::from(params.max_seg_pages) | (u64::from(params.known_size) << 32),
            last_seg_alloc: 0,
            last_seg_ptr: 0,
        };
        db.with_new_meta_page(root, |p| hdr.write(p));
        db.pool.flush_page(PageId::new(AreaId::META, root));
        Ok(StarburstObject {
            root,
            max_seg_pages: params.max_seg_pages,
            known_size: params.known_size,
        })
    }

    /// Open an existing long field by its descriptor page.
    pub fn open(db: &mut Db, root_page: u32) -> Result<Self> {
        let hdr = db.with_meta_page(root_page, RootHdr::read);
        if hdr.magic != STAR_MAGIC || hdr.kind != KIND_STARBURST {
            return Err(LobError::Corrupt(format!(
                "page {root_page} is not a Starburst descriptor"
            )));
        }
        Ok(StarburstObject {
            root: root_page,
            max_seg_pages: cast::to_u32(hdr.params & 0xFFFF_FFFF),
            known_size: (hdr.params >> 32) & 1 == 1,
        })
    }

    fn max_bytes(&self) -> u64 {
        u64::from(self.max_seg_pages) * PAGE_SIZE_U64
    }

    /// The configured extent-size ceiling, in pages (§2.2's MaxSeg).
    #[cfg(feature = "paranoid")]
    pub(crate) fn max_seg_pages(&self) -> u32 {
        self.max_seg_pages
    }

    /// Load the descriptor: header and segment list (by value, for the
    /// update paths). Hot read-only paths use [`Db::with_meta_root`]
    /// directly so a cached descriptor costs no segment-list clone.
    fn load(&self, db: &mut Db) -> (RootHdr, Vec<Entry>) {
        db.with_meta_root(self.root, |hdr, node| (*hdr, node.entries.clone()))
    }

    /// Store the descriptor. The root page is left dirty in the pool (no
    /// forced flush — §4.2: appends write no index pages).
    fn store(&self, db: &mut Db, hdr: &mut RootHdr, segs: &[Entry]) -> Result<()> {
        if segs.len() > ROOT_MAX_ENTRIES {
            return Err(LobError::Corrupt(format!(
                "descriptor overflow: {} segments",
                segs.len()
            )));
        }
        let node = Node {
            level: 0,
            entries: segs.to_vec(),
        };
        db.with_meta_page_mut(self.root, |p| node.write_root(p, hdr));
        Ok(())
    }

    /// Pages allocated to segment `i` of `segs` (the last one may be
    /// over-allocated while the object grows by appends).
    fn seg_alloc(&self, hdr: &RootHdr, segs: &[Entry], i: usize) -> u32 {
        if i + 1 == segs.len() && hdr.last_seg_alloc > 0 {
            hdr.last_seg_alloc
        } else {
            pages_for_bytes(segs[i].count)
        }
    }

    /// Find the segment containing byte `off` (`off < size`). Returns
    /// (index, byte offset of the segment's first byte).
    fn find_seg(segs: &[Entry], off: u64) -> (usize, u64) {
        let mut start = 0u64;
        for (i, e) in segs.iter().enumerate() {
            if off < start + e.count {
                return (i, start);
            }
            start += e.count;
        }
        panic!("offset {off} beyond object ({start} bytes)");
    }

    fn check_range(&self, db: &mut Db, off: u64, len: u64) -> Result<u64> {
        let size = db.with_meta_root(self.root, |hdr, _| hdr.size);
        if off.checked_add(len).is_none_or(|end| end > size) {
            return Err(LobError::OutOfRange { off, len, size });
        }
        if len > MAX_OP_BYTES as u64 {
            return Err(LobError::OperationTooLarge { len });
        }
        Ok(size)
    }

    /// Read the bytes of segments `segs[from..]` into one buffer, charging
    /// one I/O call per ≤ 512 KB chunk per segment (the staging-buffer
    /// read pattern of §3.5).
    fn read_tail(&self, db: &mut Db, hdr: &RootHdr, segs: &[Entry], from: usize) -> Vec<u8> {
        let total: u64 = segs[from..].iter().map(|e| e.count).sum();
        let mut out = Vec::with_capacity(cast::to_usize(total));
        for (i, e) in segs.iter().enumerate().skip(from) {
            let _ = self.seg_alloc(hdr, segs, i); // (used pages only are read)
            let used_pages = pages_for_bytes(e.count);
            let mut scratch = vec![0u8; cast::u32_to_usize(STAGING_PAGES) * PAGE_SIZE];
            let mut page = 0u32;
            let mut remaining = cast::to_usize(e.count);
            while page < used_pages {
                let n = (used_pages - page).min(STAGING_PAGES);
                db.pool
                    .read_pages(AreaId::LEAF, e.ptr + page, n, &mut scratch);
                let take = remaining.min(cast::u32_to_usize(n) * PAGE_SIZE);
                out.extend_from_slice(&scratch[..take]);
                remaining -= take;
                page += n;
            }
        }
        out
    }

    /// Write `bytes` as a fresh run of segments using the known-size
    /// pattern: maximum-size segments, last one trimmed to exact size.
    /// Writes go out in ≤ 512 KB staging chunks.
    fn write_max_segments(&self, db: &mut Db, bytes: &[u8]) -> Vec<Entry> {
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            let seg_bytes = cast::to_usize(((bytes.len() - off) as u64).min(self.max_bytes()));
            let pages = pages_for_bytes(seg_bytes as u64);
            let ext = db.alloc_leaf(pages);
            let mut page = 0u32;
            while page < pages {
                let n = (pages - page).min(STAGING_PAGES);
                let lo = off + cast::u32_to_usize(page) * PAGE_SIZE;
                let hi = (lo + cast::u32_to_usize(n) * PAGE_SIZE).min(off + seg_bytes);
                db.pool
                    .write_direct(AreaId::LEAF, ext.start + page, &bytes[lo..hi]);
                page += n;
            }
            out.push(Entry {
                count: seg_bytes as u64,
                ptr: ext.start,
            });
            off += seg_bytes;
        }
        out
    }

    /// Free segments `segs[from..]` (with the last one's true allocation).
    fn free_tail(&self, db: &mut Db, hdr: &RootHdr, segs: &[Entry], from: usize) {
        for i in from..segs.len() {
            let alloc = self.seg_alloc(hdr, segs, i);
            db.free_leaf(Extent::new(AreaId::LEAF, segs[i].ptr, alloc));
        }
    }

    /// The §3.5 update path shared by insert and delete: rewrite the tail
    /// from the segment containing `off`, applying `edit` to the stream.
    ///
    /// The new segments are written *before* the old ones are freed so
    /// that, per the shadowing discipline (§3.3), a crash mid-operation
    /// cannot have clobbered the pages the previous state references.
    fn rewrite_tail(
        &mut self,
        db: &mut Db,
        off: u64,
        edit: impl FnOnce(&mut Vec<u8>, usize),
    ) -> Result<()> {
        let (mut hdr, mut segs) = self.load(db);
        let (i, seg_start) = Self::find_seg(&segs, off);
        let p = cast::to_usize(off - seg_start);
        let mut tail = self.read_tail(db, &hdr, &segs, i);
        edit(&mut tail, p);
        let old = segs.split_off(i);
        if !tail.is_empty() {
            segs.extend(self.write_max_segments(db, &tail));
        }
        // Writes done; now release the superseded tail.
        for (j, e) in old.iter().enumerate() {
            let alloc = if j + 1 == old.len() && hdr.last_seg_alloc > 0 {
                hdr.last_seg_alloc
            } else {
                pages_for_bytes(e.count)
            };
            db.free_leaf(Extent::new(AreaId::LEAF, e.ptr, alloc));
        }
        hdr.last_seg_alloc = 0; // the rewritten tail is exact
        hdr.size = segs.iter().map(|e| e.count).sum();
        self.store(db, &mut hdr, &segs)
    }
}

#[cfg(feature = "paranoid")]
impl StarburstObject {
    /// Post-operation deep verification (the `paranoid` feature).
    fn paranoid_verify(&self, db: &mut Db) -> Result<()> {
        crate::paranoid::verify_object(self, db)?;
        crate::paranoid::verify_starburst_descriptor(self, db)
    }
}

impl LargeObject for StarburstObject {
    fn kind(&self) -> StorageKind {
        StorageKind::Starburst
    }

    fn root_page(&self) -> u32 {
        self.root
    }

    fn size(&self, db: &mut Db) -> u64 {
        db.with_meta_root(self.root, |hdr, _| hdr.size)
    }

    fn append(&mut self, db: &mut Db, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        if bytes.len() > MAX_OP_BYTES {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        let (mut hdr, mut segs) = self.load(db);
        let mut rem = bytes;

        // Fill the allocated tail of the last segment in place.
        if let Some(last) = segs.last_mut() {
            let alloc = if hdr.last_seg_alloc > 0 {
                hdr.last_seg_alloc
            } else {
                pages_for_bytes(last.count)
            };
            let space = u64::from(alloc) * PAGE_SIZE_U64 - last.count;
            let take = cast::to_usize((rem.len() as u64).min(space));
            if take > 0 {
                append_in_place(db, last.ptr, last.count, &rem[..take]);
                last.count += take as u64;
                rem = &rem[take..];
            }
        }

        // Allocate new segments, doubling until the max (§2.2) — or
        // max-sized immediately when the size was declared known.
        while !rem.is_empty() {
            let prev_alloc = if segs.is_empty() {
                0
            } else if hdr.last_seg_alloc > 0 {
                hdr.last_seg_alloc
            } else {
                match segs.last() {
                    Some(last) => pages_for_bytes(last.count),
                    None => unreachable!("branch guarded by segs.is_empty()"),
                }
            };
            let alloc = if self.known_size {
                self.max_seg_pages
            } else if prev_alloc == 0 {
                pages_for_bytes(rem.len() as u64).min(self.max_seg_pages)
            } else {
                (prev_alloc * 2).min(self.max_seg_pages)
            };
            let take = cast::to_usize((rem.len() as u64).min(u64::from(alloc) * PAGE_SIZE_U64));
            let ext = db.alloc_leaf(alloc);
            db.pool.write_direct(AreaId::LEAF, ext.start, &rem[..take]);
            segs.push(Entry {
                count: take as u64,
                ptr: ext.start,
            });
            hdr.last_seg_alloc = alloc;
            rem = &rem[take..];
        }
        hdr.size += bytes.len() as u64;
        self.store(db, &mut hdr, &segs)?;
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        db.op_commit();
        Ok(())
    }

    fn read(&self, db: &mut Db, off: u64, out: &mut [u8]) -> Result<()> {
        self.check_range(db, off, out.len() as u64)?;
        if out.is_empty() {
            return Ok(());
        }
        // Plan the per-segment spans under the cached descriptor (no
        // segment-list clone), then issue the same reads as before.
        let want = out.len();
        let plan: Vec<(u32, u64, usize)> = db.with_meta_root(self.root, |_, node| {
            let segs = &node.entries;
            let (mut i, mut seg_start) = Self::find_seg(segs, off);
            let mut at = off;
            let mut done = 0usize;
            let mut plan = Vec::new();
            while done < want {
                let e = segs[i];
                let within = at - seg_start;
                let take = cast::to_usize((e.count - within).min((want - done) as u64));
                plan.push((e.ptr, within, take));
                done += take;
                at += take as u64;
                seg_start += e.count;
                i += 1;
            }
            plan
        });
        let mut done = 0usize;
        for (ptr, within, take) in plan {
            db.pool
                .read_segment(AreaId::LEAF, ptr, within, &mut out[done..done + take]);
            done += take;
        }
        Ok(())
    }

    fn locate(&self, db: &mut Db, off: u64) -> Result<crate::object::SegSpan> {
        self.check_range(db, off, 1)?;
        Ok(db.with_meta_root(self.root, |_, node| {
            let (i, seg_start) = Self::find_seg(&node.entries, off);
            // `find_seg` returns an in-bounds index for a checked offset.
            // loblint: allow(panic-path)
            let e = node.entries[i];
            crate::object::SegSpan {
                start: seg_start,
                bytes: e.count,
                page: e.ptr,
            }
        }))
    }

    fn insert(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        let size = self.check_range(db, off, 0)?;
        if bytes.is_empty() {
            return Ok(());
        }
        if bytes.len() > MAX_OP_BYTES {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        if off == size {
            return self.append(db, bytes);
        }
        self.rewrite_tail(db, off, |tail, p| {
            tail.splice(p..p, bytes.iter().copied());
        })?;
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        db.op_commit();
        Ok(())
    }

    fn delete(&mut self, db: &mut Db, off: u64, len: u64) -> Result<()> {
        self.check_range(db, off, len)?;
        if len == 0 {
            return Ok(());
        }
        self.rewrite_tail(db, off, |tail, p| {
            tail.drain(p..p + cast::to_usize(len));
        })?;
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        db.op_commit();
        Ok(())
    }

    fn replace(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        self.check_range(db, off, bytes.len() as u64)?;
        if bytes.is_empty() {
            return Ok(());
        }
        let (mut hdr, mut segs) = self.load(db);
        let (first, mut seg_start) = Self::find_seg(&segs, off);
        let mut at = off;
        let mut done = 0usize;
        let mut i = first;
        // Superseded segments are released only after every new copy has
        // been written (§3.3 shadowing discipline).
        let mut free_later: Vec<Extent> = Vec::new();
        while done < bytes.len() {
            let e = segs[i];
            let within = at - seg_start;
            let take = cast::to_usize((e.count - within).min((bytes.len() - done) as u64));
            if db.config().shadowing {
                // Shadow the whole affected segment: read, patch, rewrite.
                let mut content = self.read_tail(db, &hdr, &segs[i..i + 1], 0);
                let w = cast::to_usize(within);
                content[w..w + take].copy_from_slice(&bytes[done..done + take]);
                let alloc = self.seg_alloc(&hdr, &segs, i);
                let ext = db.alloc_leaf(alloc);
                let mut page = 0u32;
                let used = pages_for_bytes(e.count);
                while page < used {
                    let n = (used - page).min(STAGING_PAGES);
                    let lo = cast::u32_to_usize(page) * PAGE_SIZE;
                    let hi = (lo + cast::u32_to_usize(n) * PAGE_SIZE).min(content.len());
                    db.pool
                        .write_direct(AreaId::LEAF, ext.start + page, &content[lo..hi]);
                    page += n;
                }
                free_later.push(Extent::new(AreaId::LEAF, segs[i].ptr, alloc));
                segs[i].ptr = ext.start;
            } else {
                patch_in_place(db, e.ptr, within, &bytes[done..done + take]);
            }
            done += take;
            at += take as u64;
            seg_start += e.count;
            i += 1;
        }
        for ext in free_later {
            db.free_leaf(ext);
        }
        self.store(db, &mut hdr, &segs)?;
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        db.op_commit();
        Ok(())
    }

    fn trim(&mut self, db: &mut Db) -> Result<()> {
        let (mut hdr, segs) = self.load(db);
        if hdr.last_seg_alloc == 0 || segs.is_empty() {
            return Ok(());
        }
        let Some(last) = segs.last() else {
            return Ok(());
        };
        let used = pages_for_bytes(last.count);
        if hdr.last_seg_alloc > used {
            db.free_leaf(Extent::new(
                AreaId::LEAF,
                last.ptr + used,
                hdr.last_seg_alloc - used,
            ));
        }
        hdr.last_seg_alloc = 0;
        self.store(db, &mut hdr, &segs)?;
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        db.op_commit();
        Ok(())
    }

    fn destroy(&mut self, db: &mut Db) -> Result<()> {
        let (hdr, segs) = self.load(db);
        self.free_tail(db, &hdr, &segs, 0);
        db.free_meta_page(self.root);
        db.op_commit();
        Ok(())
    }

    fn utilization(&self, db: &Db) -> Utilization {
        let page = db.peek_meta(self.root);
        let hdr = RootHdr::read(&page[..]);
        let node = Node::read_root(&page[..], &hdr);
        let mut data_pages = 0u64;
        for (i, e) in node.entries.iter().enumerate() {
            data_pages += u64::from(if i + 1 == node.entries.len() && hdr.last_seg_alloc > 0 {
                hdr.last_seg_alloc
            } else {
                pages_for_bytes(e.count)
            });
        }
        Utilization {
            object_bytes: hdr.size,
            data_pages,
            index_pages: 1,
        }
    }

    fn segments(&self, db: &Db) -> Vec<crate::object::SegmentInfo> {
        let page = db.peek_meta(self.root);
        let hdr = RootHdr::read(&page[..]);
        let node = Node::read_root(&page[..], &hdr);
        let mut off = 0u64;
        let n = node.entries.len();
        node.entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let info = crate::object::SegmentInfo {
                    offset: off,
                    start_page: e.ptr,
                    bytes: e.count,
                    pages: if i + 1 == n && hdr.last_seg_alloc > 0 {
                        hdr.last_seg_alloc
                    } else {
                        pages_for_bytes(e.count)
                    },
                };
                off += e.count;
                info
            })
            .collect()
    }

    fn index_page_numbers(&self, _db: &Db) -> Vec<u32> {
        vec![self.root] // flat descriptor: the root page is the index
    }

    fn check_invariants(&self, db: &Db) -> Result<()> {
        let page = db.peek_meta(self.root);
        let hdr = RootHdr::read(&page[..]);
        if hdr.magic != STAR_MAGIC {
            return Err(LobError::Corrupt("bad descriptor magic".into()));
        }
        let node = Node::read_root(&page[..], &hdr);
        let total: u64 = node.entries.iter().map(|e| e.count).sum();
        if total != hdr.size {
            return Err(LobError::InvariantViolated(format!(
                "descriptor total {total} != size {}",
                hdr.size
            )));
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.count == 0 {
                return Err(LobError::InvariantViolated(format!("empty segment {i}")));
            }
            if e.count > self.max_bytes() {
                return Err(LobError::InvariantViolated(format!(
                    "segment {i} of {} bytes exceeds the {} byte max",
                    e.count,
                    self.max_bytes()
                )));
            }
        }
        if hdr.last_seg_alloc > 0 {
            let last = node.entries.last().ok_or_else(|| {
                LobError::InvariantViolated("last_seg_alloc set on empty object".into())
            })?;
            if pages_for_bytes(last.count) > hdr.last_seg_alloc {
                return Err(LobError::InvariantViolated(
                    "last segment uses more pages than allocated".into(),
                ));
            }
        }
        Ok(())
    }

    fn snapshot(&self, db: &Db) -> Vec<u8> {
        let page = db.peek_meta(self.root);
        let hdr = RootHdr::read(&page[..]);
        let node = Node::read_root(&page[..], &hdr);
        let mut out = Vec::with_capacity(cast::to_usize(hdr.size));
        for e in &node.entries {
            let pages = pages_for_bytes(e.count);
            let mut rem = cast::to_usize(e.count);
            for i in 0..pages {
                let pg = db.peek_leaf_page(e.ptr + i);
                let take = rem.min(PAGE_SIZE);
                out.extend_from_slice(&pg[..take]);
                rem -= take;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn db() -> Db {
        Db::paper_default()
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 37 + seed as usize) % 249) as u8)
            .collect()
    }

    fn make(db: &mut Db) -> StarburstObject {
        StarburstObject::create(db, StarburstParams::default()).unwrap()
    }

    #[test]
    fn create_open_roundtrip() {
        let mut db = db();
        let obj = make(&mut db);
        let again = StarburstObject::open(&mut db, obj.root_page()).unwrap();
        assert_eq!(again.max_seg_pages, 8192);
        assert!(!again.known_size);
    }

    #[test]
    fn segments_double_until_max() {
        let mut db = db();
        let mut obj = StarburstObject::create(
            &mut db,
            StarburstParams {
                max_seg_pages: 8,
                known_size: false,
            },
        )
        .unwrap();
        // 3 KB appends: first segment 1 page, then 2, 4, 8, 8, ...
        let mut model = Vec::new();
        for i in 0..40 {
            let c = pattern(3 * 1024, i);
            obj.append(&mut db, &c).unwrap();
            model.extend_from_slice(&c);
            obj.check_invariants(&db).unwrap();
        }
        let (hdr, segs) = obj.load(&mut db);
        assert_eq!(hdr.size, model.len() as u64);
        let page_sizes: Vec<u32> = (0..segs.len())
            .map(|i| obj.seg_alloc(&hdr, &segs, i))
            .collect();
        assert_eq!(&page_sizes[..4], &[1, 2, 4, 8]);
        assert!(page_sizes[4..].iter().all(|&p| p == 8), "{page_sizes:?}");
        assert_eq!(obj.snapshot(&db), model);
    }

    #[test]
    fn known_size_uses_max_segments_immediately() {
        let mut db = db();
        let mut obj = StarburstObject::create(
            &mut db,
            StarburstParams {
                max_seg_pages: 8,
                known_size: true,
            },
        )
        .unwrap();
        obj.append(&mut db, &pattern(100_000, 1)).unwrap();
        let (hdr, segs) = obj.load(&mut db);
        assert_eq!(obj.seg_alloc(&hdr, &segs, 0), 8);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn trim_frees_the_unused_tail() {
        let mut db = db();
        let mut obj = make(&mut db);
        // Build to where the last segment is over-allocated.
        obj.append(&mut db, &pattern(3 * 1024, 1)).unwrap();
        obj.append(&mut db, &pattern(3 * 1024, 2)).unwrap();
        let before = db.leaf_pages_allocated();
        obj.trim(&mut db).unwrap();
        assert!(db.leaf_pages_allocated() < before);
        let u = obj.utilization(&db);
        assert_eq!(u.data_pages, 2, "6 KB occupies exactly 2 pages after trim");
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.snapshot(&db).len(), 6 * 1024);
    }

    #[test]
    fn reads_across_segment_boundaries() {
        let mut db = db();
        let mut obj = StarburstObject::create(
            &mut db,
            StarburstParams {
                max_seg_pages: 2,
                known_size: false,
            },
        )
        .unwrap();
        let data = pattern(50_000, 3);
        obj.append(&mut db, &data).unwrap();
        let mut out = vec![0u8; 20_000];
        obj.read(&mut db, 7_000, &mut out).unwrap();
        assert_eq!(out[..], data[7_000..27_000]);
    }

    #[test]
    fn insert_copies_the_tail_into_max_segments() {
        let mut db = db();
        let mut obj = StarburstObject::create(
            &mut db,
            StarburstParams {
                max_seg_pages: 16,
                known_size: false,
            },
        )
        .unwrap();
        let mut model = pattern(200_000, 1);
        obj.append(&mut db, &model).unwrap();
        let ins = pattern(5_000, 2);
        obj.insert(&mut db, 100_000, &ins).unwrap();
        model.splice(100_000..100_000, ins.iter().copied());
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
        // Tail now in max-size (16-page) segments, last trimmed.
        let (hdr, segs) = obj.load(&mut db);
        assert_eq!(hdr.last_seg_alloc, 0);
        for e in &segs[segs.len() - 2..segs.len() - 1] {
            assert_eq!(e.count, 16 * 4096);
        }
        // Utilization near-perfect: only the last page of each segment may
        // be partial, plus the one descriptor page.
        assert!(obj.utilization(&db).ratio() > 0.95);
    }

    #[test]
    fn update_cost_is_a_whole_object_copy_in_steady_state() {
        let mut db = db();
        let mut obj = make(&mut db); // 32 MB max segments
        let size = 1 << 20; // 1 MB object for test speed
        obj.append(&mut db, &pattern(size, 1)).unwrap();
        obj.insert(&mut db, 1000, b"x").unwrap(); // first update: rewrite
        db.reset_io_stats();
        obj.insert(&mut db, (size / 2) as u64, b"y").unwrap();
        let s = db.io_stats();
        let pages = pages_for_bytes(size as u64) as u64;
        // Whole object read + written once (±1 page of slack).
        assert!(s.pages_read >= pages && s.pages_read <= pages + 2, "{s}");
        assert!(
            s.pages_written >= pages && s.pages_written <= pages + 2,
            "{s}"
        );
        // Chunked through the 512 KB buffer: ~2 calls per 128 pages.
        let expected_calls = 2 * pages.div_ceil(128);
        assert!(
            s.calls() >= expected_calls && s.calls() <= expected_calls + 4,
            "calls {} vs expected ~{expected_calls}",
            s.calls()
        );
    }

    #[test]
    fn delete_matches_model() {
        let mut db = db();
        let mut obj = make(&mut db);
        let mut model = pattern(300_000, 5);
        obj.append(&mut db, &model).unwrap();
        obj.delete(&mut db, 50_000, 100_000).unwrap();
        model.drain(50_000..150_000);
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.size(&mut db), 200_000);
    }

    #[test]
    fn delete_everything() {
        let mut db = db();
        let mut obj = make(&mut db);
        obj.append(&mut db, &pattern(100_000, 5)).unwrap();
        obj.delete(&mut db, 0, 100_000).unwrap();
        assert_eq!(obj.size(&mut db), 0);
        assert!(obj.snapshot(&db).is_empty());
        assert_eq!(db.leaf_pages_allocated(), 0);
    }

    #[test]
    fn replace_shadowed_and_in_place() {
        for shadowing in [true, false] {
            let mut db = Db::new(crate::DbConfig {
                shadowing,
                ..crate::DbConfig::default()
            });
            let mut obj = make(&mut db);
            let mut model = pattern(60_000, 1);
            obj.append(&mut db, &model).unwrap();
            let patch = pattern(10_000, 9);
            obj.replace(&mut db, 20_000, &patch).unwrap();
            model[20_000..30_000].copy_from_slice(&patch);
            assert_eq!(obj.snapshot(&db), model, "shadowing={shadowing}");
            obj.check_invariants(&db).unwrap();
        }
    }

    #[test]
    fn out_of_range_errors() {
        let mut db = db();
        let mut obj = make(&mut db);
        obj.append(&mut db, b"hello").unwrap();
        let mut out = [0u8; 3];
        assert!(obj.read(&mut db, 4, &mut out).is_err());
        assert!(obj.insert(&mut db, 9, b"x").is_err());
        assert!(obj.delete(&mut db, 0, 6).is_err());
    }

    #[test]
    fn destroy_frees_everything() {
        let mut db = db();
        let mut obj = make(&mut db);
        obj.append(&mut db, &pattern(500_000, 2)).unwrap();
        obj.destroy(&mut db).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 0);
        assert_eq!(db.meta_pages_allocated(), 0);
    }

    #[test]
    fn random_ops_match_reference_model() {
        let mut db = db();
        let mut obj = StarburstObject::create(
            &mut db,
            StarburstParams {
                max_seg_pages: 32,
                known_size: false,
            },
        )
        .unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..100 {
            let c = rng.gen_range(0..10);
            if model.is_empty() || c < 4 {
                let chunk = pattern(rng.gen_range(1..30_000), rng.gen());
                let off = rng.gen_range(0..=model.len());
                obj.insert(&mut db, off as u64, &chunk).unwrap();
                model.splice(off..off, chunk.iter().copied());
            } else if c < 7 {
                let off = rng.gen_range(0..model.len());
                let len = rng.gen_range(1..=(model.len() - off).min(20_000));
                obj.delete(&mut db, off as u64, len as u64).unwrap();
                model.drain(off..off + len);
            } else {
                let off = rng.gen_range(0..model.len());
                let len = rng.gen_range(1..=(model.len() - off).min(10_000));
                let mut out = vec![0u8; len];
                obj.read(&mut db, off as u64, &mut out).unwrap();
                assert_eq!(out[..], model[off..off + len], "read @{step}");
            }
            obj.check_invariants(&db)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(obj.snapshot(&db), model, "content @{step}");
        }
    }
}
