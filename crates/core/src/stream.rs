//! `std::io` adapters over large objects: stream a BLOB like a file.
//!
//! [`ObjectReader`] implements [`Read`] + [`Seek`] for sequential and
//! random consumption (the §1 "play the recording / seek to a frame"
//! access pattern); [`ObjectWriter`] implements [`Write`] for streaming
//! creation by appends, buffering to a configurable chunk size so the
//! append pattern matches how clients would really feed a storage
//! manager.

use std::io::{self, Read, Seek, SeekFrom, Write};

use crate::db::Db;
use crate::object::LargeObject;

/// Streaming reader over a large object.
///
/// Borrows the database and the object for its lifetime; each `read`
/// turns into one byte-range read through the buffer manager.
pub struct ObjectReader<'a> {
    db: &'a mut Db,
    obj: &'a dyn LargeObject,
    pos: u64,
    size: u64,
}

impl<'a> ObjectReader<'a> {
    /// Start a sequential reader at offset 0 of `obj`.
    pub fn new(db: &'a mut Db, obj: &'a dyn LargeObject) -> Self {
        let size = obj.size(db);
        ObjectReader {
            db,
            obj,
            pos: 0,
            size,
        }
    }

    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl Read for ObjectReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.size.saturating_sub(self.pos);
        let n = (buf.len() as u64).min(remaining) as usize;
        if n == 0 {
            return Ok(0);
        }
        self.obj
            .read(self.db, self.pos, &mut buf[..n])
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl Seek for ObjectReader<'_> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let target: i64 = match pos {
            SeekFrom::Start(n) => n as i64,
            SeekFrom::End(d) => self.size as i64 + d,
            SeekFrom::Current(d) => self.pos as i64 + d,
        };
        if target < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = target as u64; // seeking past EOF is allowed, reads return 0
        Ok(self.pos)
    }
}

/// Buffered appending writer over a large object.
///
/// Bytes are accumulated into `chunk`-sized appends — §1: "smaller (but
/// sizable) chunks of bytes will be successively appended at the end of
/// the object". Call [`ObjectWriter::finish`] (or let `flush` run) to
/// push out the final partial chunk; `finish` also trims build-time
/// over-allocation.
pub struct ObjectWriter<'a> {
    db: &'a mut Db,
    obj: &'a mut dyn LargeObject,
    buf: Vec<u8>,
    chunk: usize,
    written: u64,
}

impl<'a> ObjectWriter<'a> {
    /// Append-writer with the given chunk size (e.g. 64 KB).
    pub fn new(db: &'a mut Db, obj: &'a mut dyn LargeObject, chunk: usize) -> Self {
        assert!(chunk > 0, "zero chunk size");
        ObjectWriter {
            db,
            obj,
            buf: Vec::with_capacity(chunk),
            chunk,
            written: 0,
        }
    }

    /// Total bytes handed to the object so far (excluding buffered ones).
    pub fn appended(&self) -> u64 {
        self.written
    }

    fn push_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.obj
            .append(self.db, &self.buf)
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.written += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flush the last partial chunk and trim the object's tail.
    pub fn finish(mut self) -> io::Result<u64> {
        self.push_chunk()?;
        self.obj
            .trim(self.db)
            .map_err(|e| io::Error::other(e.to_string()))?;
        Ok(self.written)
    }
}

impl Write for ObjectWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.chunk - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.chunk {
                self.push_chunk()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.push_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EosObject, EosParams};

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn writer_then_reader_roundtrip() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(200_000);
        {
            let mut w = ObjectWriter::new(&mut db, &mut obj, 64 * 1024);
            // Write in awkward pieces to exercise the chunking.
            for piece in data.chunks(7_001) {
                w.write_all(piece).unwrap();
            }
            assert_eq!(w.finish().unwrap(), 200_000);
        }
        assert_eq!(obj.size(&mut db), 200_000);
        let mut r = ObjectReader::new(&mut db, &obj);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn reader_seeks_like_a_file() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(50_000);
        obj.append(&mut db, &data).unwrap();
        let mut r = ObjectReader::new(&mut db, &obj);
        r.seek(SeekFrom::Start(10_000)).unwrap();
        let mut buf = [0u8; 16];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[..], data[10_000..10_016]);
        r.seek(SeekFrom::End(-100)).unwrap();
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail[..], data[49_900..]);
        r.seek(SeekFrom::Current(-50)).unwrap();
        assert_eq!(r.position(), 49_950);
        // Past-EOF seek reads as EOF.
        r.seek(SeekFrom::Start(1 << 30)).unwrap();
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        assert!(r.seek(SeekFrom::End(-1_000_000)).is_err());
    }

    #[test]
    fn writer_flush_pushes_partial_chunk() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let mut w = ObjectWriter::new(&mut db, &mut obj, 4096);
        w.write_all(b"tiny").unwrap();
        assert_eq!(w.appended(), 0, "still buffered");
        w.flush().unwrap();
        assert_eq!(w.appended(), 4);
        drop(w);
        assert_eq!(obj.snapshot(&db), b"tiny");
    }

    #[test]
    fn bufread_copy_between_objects() {
        // Copy one object into another through std::io machinery only.
        let mut db = Db::paper_default();
        let mut src = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(123_456);
        src.append(&mut db, &data).unwrap();

        let mut dst = EosObject::create(&mut db, EosParams::default()).unwrap();
        // Two-phase copy (the borrow rules forbid reading and writing the
        // same Db simultaneously — single-client, like the paper).
        let mut tmp = Vec::new();
        ObjectReader::new(&mut db, &src)
            .read_to_end(&mut tmp)
            .unwrap();
        let mut w = ObjectWriter::new(&mut db, &mut dst, 32 * 1024);
        w.write_all(&tmp).unwrap();
        w.finish().unwrap();
        assert_eq!(dst.snapshot(&db), data);
    }
}
