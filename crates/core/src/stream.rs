//! `std::io` adapters over large objects: stream a BLOB like a file.
//!
//! [`ObjectReader`] implements [`Read`] + [`Seek`] for sequential and
//! random consumption (the §1 "play the recording / seek to a frame"
//! access pattern); [`ObjectWriter`] implements [`Write`] for streaming
//! creation by appends, buffering to a configurable chunk size so the
//! append pattern matches how clients would really feed a storage
//! manager.

use std::io::{self, BufRead, Read, Seek, SeekFrom, Write};

use lobstore_simdisk::cast;

use crate::db::Db;
use crate::object::LargeObject;

/// Upper bound on one scan-cursor refill. Large enough that tree-scheme
/// segments (≤ a few hundred KB) always refill in a single span read;
/// bounds the buffer for Starburst's up-to-32 MB segments.
const READ_AHEAD_MAX: usize = 4 << 20;

/// Streaming reader over a large object.
///
/// A sequential-scan cursor: instead of descending the index for every
/// `read()` call (ruinous for small chunks — one full root-to-leaf walk
/// per 4 KB), the reader locates the segment containing the current
/// position once per span and refills a read-ahead buffer with a single
/// byte-range read covering the rest of that segment (capped at
/// `READ_AHEAD_MAX`, 4 MiB). Small sequential reads then cost exactly the
/// simulated I/O of one large read: the refills issue the same
/// per-segment `read_segment` calls a whole-range [`LargeObject::read`]
/// would.
///
/// Seeks don't discard the buffer — the object cannot change while the
/// reader holds the database borrow, so re-reads within the buffered
/// span (including backward seeks) are served from memory.
pub struct ObjectReader<'a> {
    db: &'a mut Db,
    obj: &'a dyn LargeObject,
    pos: u64,
    size: u64,
    /// Read-ahead buffer holding object bytes
    /// `[buf_start, buf_start + buf.len())`.
    buf: Vec<u8>,
    buf_start: u64,
}

impl<'a> ObjectReader<'a> {
    /// Start a sequential reader at offset 0 of `obj`.
    pub fn new(db: &'a mut Db, obj: &'a dyn LargeObject) -> Self {
        let size = obj.size(db);
        // Reserve the full read-ahead capacity up front: refills then
        // never reallocate (a reallocation would memcpy bytes that are
        // about to be overwritten by the next span read).
        let cap = cast::to_usize(size.min(READ_AHEAD_MAX as u64));
        ObjectReader {
            db,
            obj,
            pos: 0,
            size,
            buf: Vec::with_capacity(cap),
            buf_start: 0,
        }
    }

    /// Current read position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Is `pos` inside the buffered span?
    fn buffered(&self, pos: u64) -> bool {
        pos.checked_sub(self.buf_start)
            .is_some_and(|d| d < self.buf.len() as u64)
    }

    /// Refill the read-ahead buffer starting at the current position:
    /// one `locate` to find the segment's end, one byte-range read for
    /// the remainder of that segment.
    fn refill(&mut self) -> crate::error::Result<()> {
        let span = self.obj.locate(self.db, self.pos)?;
        let span_end = span.end().min(self.size);
        let want = cast::to_usize(span_end.saturating_sub(self.pos)).min(READ_AHEAD_MAX);
        debug_assert!(want > 0, "refill past the located span");
        self.buf.resize(want, 0);
        self.obj.read(self.db, self.pos, &mut self.buf)?;
        self.buf_start = self.pos;
        Ok(())
    }
}

impl Read for ObjectReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.size.saturating_sub(self.pos);
        let n = (buf.len() as u64).min(remaining) as usize;
        if n == 0 {
            return Ok(0);
        }
        if !self.buffered(self.pos) {
            self.refill().map_err(|e| io::Error::other(e.to_string()))?;
        }
        let lo = cast::to_usize(self.pos.saturating_sub(self.buf_start));
        // Serve to the end of the buffered span; `Read` allows short
        // reads and callers loop.
        let take = n.min(self.buf.len() - lo);
        // `lo < buf.len()` by `buffered` above and `take` is clamped.
        // loblint: allow(panic-path)
        buf[..take].copy_from_slice(&self.buf[lo..lo + take]);
        self.pos += take as u64;
        Ok(take)
    }
}

impl BufRead for ObjectReader<'_> {
    /// Zero-copy access to the buffered span: the returned slice borrows
    /// the read-ahead buffer directly, so sequential consumers pay for
    /// each byte exactly once (the refill's copy out of the page store)
    /// instead of twice. Refills on demand like [`Read::read`] and
    /// charges identical simulated I/O.
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos >= self.size {
            return Ok(&[]);
        }
        if !self.buffered(self.pos) {
            self.refill().map_err(|e| io::Error::other(e.to_string()))?;
        }
        let lo = cast::to_usize(self.pos.saturating_sub(self.buf_start));
        // `lo < buf.len()` by `buffered` above.
        // loblint: allow(panic-path)
        Ok(&self.buf[lo..])
    }

    fn consume(&mut self, amt: usize) {
        // Contract (std::io::BufRead): `amt` never exceeds the slice
        // `fill_buf` returned, so this stays within the buffered span.
        debug_assert!(
            self.buffered(self.pos) || amt == 0,
            "consume before fill_buf"
        );
        // loblint: allow(arith-overflow)
        self.pos += amt as u64;
    }
}

impl Seek for ObjectReader<'_> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let target: i64 = match pos {
            SeekFrom::Start(n) => n as i64,
            SeekFrom::End(d) => self.size as i64 + d,
            SeekFrom::Current(d) => self.pos as i64 + d,
        };
        if target < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = target as u64; // seeking past EOF is allowed, reads return 0
        Ok(self.pos)
    }
}

/// Buffered appending writer over a large object.
///
/// Bytes are accumulated into `chunk`-sized appends — §1: "smaller (but
/// sizable) chunks of bytes will be successively appended at the end of
/// the object". Call [`ObjectWriter::finish`] (or let `flush` run) to
/// push out the final partial chunk; `finish` also trims build-time
/// over-allocation.
pub struct ObjectWriter<'a> {
    db: &'a mut Db,
    obj: &'a mut dyn LargeObject,
    buf: Vec<u8>,
    chunk: usize,
    written: u64,
}

impl<'a> ObjectWriter<'a> {
    /// Append-writer with the given chunk size (e.g. 64 KB).
    pub fn new(db: &'a mut Db, obj: &'a mut dyn LargeObject, chunk: usize) -> Self {
        assert!(chunk > 0, "zero chunk size");
        ObjectWriter {
            db,
            obj,
            buf: Vec::with_capacity(chunk),
            chunk,
            written: 0,
        }
    }

    /// Total bytes handed to the object so far (excluding buffered ones).
    pub fn appended(&self) -> u64 {
        self.written
    }

    fn push_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.obj
            .append(self.db, &self.buf)
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.written += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flush the last partial chunk and trim the object's tail.
    pub fn finish(mut self) -> io::Result<u64> {
        self.push_chunk()?;
        self.obj
            .trim(self.db)
            .map_err(|e| io::Error::other(e.to_string()))?;
        Ok(self.written)
    }
}

impl Write for ObjectWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.chunk - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.chunk {
                self.push_chunk()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.push_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EosObject, EosParams};

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn writer_then_reader_roundtrip() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(200_000);
        {
            let mut w = ObjectWriter::new(&mut db, &mut obj, 64 * 1024);
            // Write in awkward pieces to exercise the chunking.
            for piece in data.chunks(7_001) {
                w.write_all(piece).unwrap();
            }
            assert_eq!(w.finish().unwrap(), 200_000);
        }
        assert_eq!(obj.size(&mut db), 200_000);
        let mut r = ObjectReader::new(&mut db, &obj);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn reader_seeks_like_a_file() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(50_000);
        obj.append(&mut db, &data).unwrap();
        let mut r = ObjectReader::new(&mut db, &obj);
        r.seek(SeekFrom::Start(10_000)).unwrap();
        let mut buf = [0u8; 16];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[..], data[10_000..10_016]);
        r.seek(SeekFrom::End(-100)).unwrap();
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail[..], data[49_900..]);
        r.seek(SeekFrom::Current(-50)).unwrap();
        assert_eq!(r.position(), 49_950);
        // Past-EOF seek reads as EOF.
        r.seek(SeekFrom::Start(1 << 30)).unwrap();
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        assert!(r.seek(SeekFrom::End(-1_000_000)).is_err());
    }

    #[test]
    fn writer_flush_pushes_partial_chunk() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let mut w = ObjectWriter::new(&mut db, &mut obj, 4096);
        w.write_all(b"tiny").unwrap();
        assert_eq!(w.appended(), 0, "still buffered");
        w.flush().unwrap();
        assert_eq!(w.appended(), 4);
        drop(w);
        assert_eq!(obj.snapshot(&db), b"tiny");
    }

    #[test]
    fn streamed_small_reads_cost_like_one_big_read() {
        // The scan-cursor guarantee (and the regression this pins): N
        // small sequential reads through ObjectReader charge exactly the
        // simulated I/O of one whole-object `read`, for every scheme.
        // Before the cursor, each 1 KB read re-descended the index and
        // issued its own segment read.
        use crate::spec::ManagerSpec;
        let size = 600_000usize;
        for spec in [
            ManagerSpec::esm(16),
            ManagerSpec::eos(16),
            ManagerSpec::starburst(),
        ] {
            let build = |db: &mut Db| {
                let mut obj = spec.create(db).unwrap();
                obj.append(db, &pattern(size)).unwrap();
                obj
            };

            let mut db_bulk = Db::paper_default();
            let obj_bulk = build(&mut db_bulk);
            db_bulk.reset_io_stats();
            let mut bulk_out = vec![0u8; size];
            obj_bulk.read(&mut db_bulk, 0, &mut bulk_out).unwrap();
            let bulk = db_bulk.io_stats();

            let mut db_stream = Db::paper_default();
            let obj_stream = build(&mut db_stream);
            db_stream.reset_io_stats();
            let mut r = ObjectReader::new(&mut db_stream, obj_stream.as_ref());
            let mut got = Vec::with_capacity(size);
            let mut chunk = [0u8; 1024];
            loop {
                let n = r.read(&mut chunk).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&chunk[..n]);
            }
            let streamed = db_stream.io_stats();

            assert_eq!(got, bulk_out, "{}: bytes differ", spec.label());
            assert_eq!(
                streamed,
                bulk,
                "{}: streamed 1 KB reads must cost the same simulated I/O \
                 as one large read",
                spec.label()
            );
        }
    }

    #[test]
    fn cursor_serves_backward_seeks_from_the_buffer() {
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(100_000);
        obj.append(&mut db, &data).unwrap();
        let mut r = ObjectReader::new(&mut db, &obj);
        let mut buf = [0u8; 4096];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[..], data[..4096]);
        // Jump back: the span is already buffered, so this must not
        // change the simulated I/O tally.
        let io_before = r.db.io_stats();
        r.seek(SeekFrom::Start(100)).unwrap();
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[..], data[100..100 + 4096]);
        assert_eq!(r.db.io_stats(), io_before, "re-read served from buffer");
    }

    #[test]
    fn bufread_scan_matches_read_scan_bytes_and_io() {
        // The zero-copy surface is the copying surface minus one memcpy:
        // fill_buf/consume must yield the same bytes and charge the same
        // simulated I/O as Read::read over the same object.
        use crate::spec::ManagerSpec;
        for spec in [
            ManagerSpec::esm(16),
            ManagerSpec::eos(16),
            ManagerSpec::starburst(),
        ] {
            let size = 700_000usize;
            let build = |db: &mut Db| {
                let mut obj = spec.create(db).unwrap();
                obj.append(db, &pattern(size)).unwrap();
                obj
            };

            let mut db_read = Db::paper_default();
            let obj_read = build(&mut db_read);
            db_read.reset_io_stats();
            let mut copied = Vec::with_capacity(size);
            ObjectReader::new(&mut db_read, obj_read.as_ref())
                .read_to_end(&mut copied)
                .unwrap();
            let io_read = db_read.io_stats();

            let mut db_buf = Db::paper_default();
            let obj_buf = build(&mut db_buf);
            db_buf.reset_io_stats();
            let mut borrowed = Vec::with_capacity(size);
            let mut r = ObjectReader::new(&mut db_buf, obj_buf.as_ref());
            loop {
                let chunk = r.fill_buf().unwrap();
                if chunk.is_empty() {
                    break;
                }
                let n = chunk.len().min(4096);
                borrowed.extend_from_slice(&chunk[..n]);
                r.consume(n);
            }
            drop(r);
            let io_buf = db_buf.io_stats();

            assert_eq!(borrowed, copied, "{}: bytes differ", spec.label());
            assert_eq!(
                io_buf,
                io_read,
                "{}: fill_buf/consume must charge the same simulated I/O",
                spec.label()
            );
        }
    }

    #[test]
    fn bufread_copy_between_objects() {
        // Copy one object into another through std::io machinery only.
        let mut db = Db::paper_default();
        let mut src = EosObject::create(&mut db, EosParams::default()).unwrap();
        let data = pattern(123_456);
        src.append(&mut db, &data).unwrap();

        let mut dst = EosObject::create(&mut db, EosParams::default()).unwrap();
        // Two-phase copy (the borrow rules forbid reading and writing the
        // same Db simultaneously — single-client, like the paper).
        let mut tmp = Vec::new();
        ObjectReader::new(&mut db, &src)
            .read_to_end(&mut tmp)
            .unwrap();
        let mut w = ObjectWriter::new(&mut db, &mut dst, 32 * 1024);
        w.write_all(&tmp).unwrap();
        w.finish().unwrap();
        assert_eq!(dst.snapshot(&db), data);
    }
}
