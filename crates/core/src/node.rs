//! In-memory representation and page layout of positional-tree nodes.
//!
//! Both ESM and EOS index their leaf segments with the same tree of
//! `(count, pointer)` pairs (§2.1, §2.3): entry *i* of a node records how
//! many object bytes live in the subtree (or leaf segment) it points to.
//! The paper stores cumulative counts; we store per-child counts, which
//! occupy the same 8 bytes per pair and make structural updates local.
//!
//! Page layouts (all integers little-endian):
//!
//! ```text
//! interior node page              root page
//! ┌────────────────────────┐     ┌──────────────────────────────┐
//! │ 0..2   n_entries  u16  │     │ 0..4   magic            u32  │
//! │ 2..3   level      u8   │     │ 4..5   kind             u8   │
//! │ 3..8   reserved        │     │ 5..6   level            u8   │
//! │ 8..    entries         │     │ 6..8   n_entries        u16  │
//! │        (count u32,     │     │ 8..16  object size      u64  │
//! │         ptr   u32)*    │     │ 16..24 manager params   u64  │
//! └────────────────────────┘     │ 24..28 last_seg_alloc   u32  │
//!                                │ 28..40 reserved              │
//! (4096−8)/8  = 511 pairs        │ 40..   entries               │
//!                                └──────────────────────────────┘
//!                                (4096−40)/8 = 507 pairs
//! ```
//!
//! matching the paper's 511/507 pair capacities (§4.1).

use lobstore_simdisk::{cast, PAGE_SIZE};

use crate::layout::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};

/// Byte offset of the entry array in an interior node page.
pub(crate) const NODE_ENTRIES_OFF: usize = 8;
/// Byte offset of the entry array in a root page.
pub(crate) const ROOT_ENTRIES_OFF: usize = 40;
/// Physical pair capacity of an interior node page.
pub(crate) const NODE_MAX_ENTRIES: usize = (PAGE_SIZE - NODE_ENTRIES_OFF) / 8;
/// Physical pair capacity of a root page.
pub(crate) const ROOT_MAX_ENTRIES: usize = (PAGE_SIZE - ROOT_ENTRIES_OFF) / 8;

/// One `(count, pointer)` pair.
///
/// For a node of level 0, `ptr` is the first page of a leaf segment in the
/// LEAF area; for higher levels it is an index page in the META area.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Entry {
    /// Bytes stored in the subtree / leaf segment behind `ptr`.
    pub count: u64,
    pub ptr: u32,
}

/// An index node held in memory while it is being read or rewritten.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Node {
    /// 0 ⇒ entries point at leaf segments; k>0 ⇒ entries point at nodes of
    /// level k−1.
    pub level: u8,
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node (test/builder helper).
    #[cfg(test)]
    pub fn new(level: u8) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// Total bytes under this node.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Locate the child holding byte `off`; `off == total()` selects the
    /// last child with its full count as the in-child offset (the append
    /// position). Returns `(entry index, offset within that child)`.
    ///
    /// # Panics
    /// If the node is empty or `off > total()`.
    pub fn find_child(&self, off: u64) -> (usize, u64) {
        assert!(!self.entries.is_empty(), "find_child on empty node");
        let mut rem = off;
        for (i, e) in self.entries.iter().enumerate() {
            if rem < e.count {
                return (i, rem);
            }
            rem = rem.saturating_sub(e.count);
        }
        let last = self.entries.len() - 1;
        assert!(rem == 0, "offset beyond node total");
        (last, self.entries.last().map_or(0, |e| e.count))
    }

    /// Byte offset (relative to this node) at which entry `idx` starts.
    #[cfg(test)]
    pub fn offset_of(&self, idx: usize) -> u64 {
        self.entries[..idx].iter().map(|e| e.count).sum()
    }

    /// Parse an interior node page.
    pub fn read_page(page: &[u8]) -> Node {
        let n = usize::from(get_u16(page, 0));
        let level = page.get(2).copied().unwrap_or(0);
        assert!(n <= NODE_MAX_ENTRIES, "corrupt node: {n} entries");
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let at = NODE_ENTRIES_OFF + i * 8;
            entries.push(Entry {
                count: u64::from(get_u32(page, at)),
                ptr: get_u32(page, at + 4),
            });
        }
        Node { level, entries }
    }

    /// Serialize into an interior node page.
    pub fn write_page(&self, page: &mut [u8]) {
        assert!(self.entries.len() <= NODE_MAX_ENTRIES, "node overflow");
        put_u16(page, 0, cast::usize_to_u16(self.entries.len()));
        if let Some(b) = page.get_mut(2) {
            *b = self.level;
        }
        if let Some(gap) = page.get_mut(3..NODE_ENTRIES_OFF) {
            gap.fill(0);
        }
        write_entries(
            &self.entries,
            page.get_mut(NODE_ENTRIES_OFF..).unwrap_or_default(),
        );
    }

    /// Parse the entry array of a root page (level/count come from the
    /// header, already parsed into `hdr`).
    pub fn read_root(page: &[u8], hdr: &RootHdr) -> Node {
        let n = usize::from(hdr.n_entries);
        assert!(n <= ROOT_MAX_ENTRIES, "corrupt root: {n} entries");
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let at = ROOT_ENTRIES_OFF + i * 8;
            entries.push(Entry {
                count: u64::from(get_u32(page, at)),
                ptr: get_u32(page, at + 4),
            });
        }
        Node {
            level: hdr.level,
            entries,
        }
    }

    /// Serialize entries into a root page and refresh the header fields
    /// that the tree owns (level, n_entries).
    pub fn write_root(&self, page: &mut [u8], hdr: &mut RootHdr) {
        assert!(self.entries.len() <= ROOT_MAX_ENTRIES, "root overflow");
        hdr.level = self.level;
        hdr.n_entries = cast::usize_to_u16(self.entries.len());
        hdr.write(page);
        write_entries(
            &self.entries,
            page.get_mut(ROOT_ENTRIES_OFF..).unwrap_or_default(),
        );
    }
}

fn write_entries(entries: &[Entry], out: &mut [u8]) {
    for (i, e) in entries.iter().enumerate() {
        assert!(e.count <= u64::from(u32::MAX), "count exceeds on-page u32");
        put_u32(out, i * 8, cast::to_u32(e.count));
        put_u32(out, i * 8 + 4, e.ptr);
    }
}

/// The root-page header shared by the tree-based managers (and reused, with
/// its own magic, by Starburst's descriptor page).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct RootHdr {
    pub magic: u32,
    pub kind: u8,
    pub level: u8,
    pub n_entries: u16,
    /// Current object size in bytes.
    pub size: u64,
    /// Manager-specific parameter word (ESM leaf pages; EOS threshold;
    /// Starburst max segment pages).
    pub params: u64,
    /// Pages *allocated* to the rightmost segment (which may exceed the
    /// pages *used*, while an object is being built by appends). 0 when
    /// the last segment is exact.
    pub last_seg_alloc: u32,
    /// First page of the segment `last_seg_alloc` refers to, so the
    /// over-allocation can be attributed (and freed) safely even after
    /// structural changes. Meaningless when `last_seg_alloc == 0`.
    pub last_seg_ptr: u32,
}

impl RootHdr {
    /// Parse the header fields of a root page.
    pub fn read(page: &[u8]) -> RootHdr {
        RootHdr {
            magic: get_u32(page, 0),
            kind: page.get(4).copied().unwrap_or(0),
            level: page.get(5).copied().unwrap_or(0),
            n_entries: get_u16(page, 6),
            size: get_u64(page, 8),
            params: get_u64(page, 16),
            last_seg_alloc: get_u32(page, 24),
            last_seg_ptr: get_u32(page, 28),
        }
    }

    /// Serialize the header fields into a root page.
    pub fn write(&self, page: &mut [u8]) {
        put_u32(page, 0, self.magic);
        if let Some(b) = page.get_mut(4) {
            *b = self.kind;
        }
        if let Some(b) = page.get_mut(5) {
            *b = self.level;
        }
        put_u16(page, 6, self.n_entries);
        put_u64(page, 8, self.size);
        put_u64(page, 16, self.params);
        put_u32(page, 24, self.last_seg_alloc);
        put_u32(page, 28, self.last_seg_ptr);
        if let Some(gap) = page.get_mut(32..ROOT_ENTRIES_OFF) {
            gap.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(count: u64, ptr: u32) -> Entry {
        Entry { count, ptr }
    }

    #[test]
    fn capacities_match_the_paper() {
        assert_eq!(NODE_MAX_ENTRIES, 511);
        assert_eq!(ROOT_MAX_ENTRIES, 507);
    }

    #[test]
    fn node_page_roundtrip() {
        let mut n = Node::new(2);
        for i in 0..100 {
            n.entries.push(entry(u64::from(i) * 13 + 1, 1000 + i));
        }
        let mut page = [0u8; PAGE_SIZE];
        n.write_page(&mut page);
        let back = Node::read_page(&page);
        assert_eq!(back, n);
    }

    #[test]
    fn root_page_roundtrip() {
        let mut hdr = RootHdr {
            magic: 0x1234_5678,
            kind: 2,
            level: 1,
            n_entries: 0,
            size: 98_765,
            params: 16,
            last_seg_alloc: 7,
            last_seg_ptr: 0,
        };
        let mut n = Node::new(1);
        n.entries.push(entry(500, 3));
        n.entries.push(entry(98_265, 9));
        let mut page = [0u8; PAGE_SIZE];
        n.write_root(&mut page, &mut hdr);
        let hdr2 = RootHdr::read(&page);
        assert_eq!(hdr2, hdr);
        assert_eq!(hdr2.n_entries, 2);
        let back = Node::read_root(&page, &hdr2);
        assert_eq!(back, n);
    }

    #[test]
    fn find_child_walks_counts() {
        let mut n = Node::new(0);
        n.entries = vec![entry(900, 1), entry(930, 2)];
        assert_eq!(n.total(), 1830); // the paper's Figure 1 example
        assert_eq!(n.find_child(0), (0, 0));
        assert_eq!(n.find_child(899), (0, 899));
        assert_eq!(n.find_child(900), (1, 0));
        assert_eq!(n.find_child(1829), (1, 929));
        // Append position: one past the end.
        assert_eq!(n.find_child(1830), (1, 930));
        assert_eq!(n.offset_of(1), 900);
    }

    #[test]
    #[should_panic(expected = "offset beyond node total")]
    fn find_child_rejects_far_offsets() {
        let mut n = Node::new(0);
        n.entries = vec![entry(10, 1)];
        n.find_child(11);
    }

    #[test]
    fn full_capacity_roundtrip() {
        let mut n = Node::new(0);
        for i in 0..NODE_MAX_ENTRIES {
            n.entries.push(entry(1, i as u32));
        }
        let mut page = [0u8; PAGE_SIZE];
        n.write_page(&mut page);
        assert_eq!(Node::read_page(&page).entries.len(), NODE_MAX_ENTRIES);
    }
}
