//! Atomic multi-operation transactions (DESIGN.md §16.2).
//!
//! [`Db::txn`] runs a closure of ordinary object operations as one
//! atomic unit. While the transaction is open:
//!
//! * each operation's shadow context *absorbs* instead of executing —
//!   shadow-page flushes and frees queue on the transaction, so nothing
//!   superseded is released and nothing new is made durable early;
//! * the first in-place overwrite of each committed META page (object
//!   roots, catalog pages) captures a pre-image for rollback;
//! * allocations are tracked so rollback can return them.
//!
//! Commit is the single header/root flip discipline, batched: flush
//! every queued shadow page, release every queued free (deferred if a
//! snapshot pins it), write one allocation-log commit marker, and
//! advance the version — exactly once for the whole batch. Rollback
//! restores the captured pre-images, frees the transaction's
//! allocations, discards the queued frees, and appends compensating
//! `Free` records so a later commit marker cannot resurrect the aborted
//! allocations at replay.

use std::collections::{HashMap, HashSet};

use lobstore_buddy::Extent;
use lobstore_simdisk::{AreaId, PageId, PAGE_SIZE};

use crate::db::Db;
use crate::error::Result;

/// Queued effects of an open transaction (owned by [`Db`]).
pub(crate) struct TxnState {
    /// META pages to flush at commit (shadow copies, fresh index pages),
    /// deduplicated, in first-queued order.
    flush: Vec<u32>,
    /// META pages whose free is queued for commit.
    free_meta: Vec<u32>,
    /// LEAF extents whose free is queued for commit.
    free_extents: Vec<Extent>,
    /// Committed pages overwritten in place → their pre-transaction
    /// content, captured at first overwrite (rollback undo).
    preimages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
    /// META pages allocated during the transaction (rollback frees them;
    /// their in-place writes need no pre-image).
    alloc_meta: HashSet<u32>,
    /// LEAF extents allocated during the transaction.
    alloc_leaf: Vec<Extent>,
    /// Operations absorbed so far (observability).
    ops: u32,
}

impl Db {
    /// Is a transaction currently open?
    pub fn txn_active(&self) -> bool {
        self.txn.is_some()
    }

    /// Run `f` as one atomic transaction. Every object operation inside
    /// the closure batches onto a single commit: one flush of all shadow
    /// pages, one release of all superseded storage, one allocation-log
    /// commit marker, one version advance. If `f` returns `Err`, the
    /// database rolls back to its pre-transaction state (in-place page
    /// updates restored, allocations returned) and the error is passed
    /// through.
    ///
    /// A crash (see [`Db::crash_and_reboot`]) while the transaction is
    /// open aborts it: with the allocation log enabled, replay recovers
    /// the last committed version.
    ///
    /// # Panics
    /// If a transaction is already open (transactions do not nest) or
    /// shadowing is disabled (in-place leaf updates cannot be rolled
    /// back).
    pub fn txn<R>(&mut self, f: impl FnOnce(&mut Db) -> Result<R>) -> Result<R> {
        assert!(!self.txn_active(), "transactions do not nest");
        assert!(
            self.cfg.shadowing,
            "transactions require the shadowing discipline (DbConfig::shadowing)"
        );
        self.txn = Some(TxnState {
            flush: Vec::new(),
            free_meta: Vec::new(),
            free_extents: Vec::new(),
            preimages: HashMap::new(),
            alloc_meta: HashSet::new(),
            alloc_leaf: Vec::new(),
            ops: 0,
        });
        match f(self) {
            Ok(r) => {
                self.txn_commit();
                Ok(r)
            }
            Err(e) => {
                self.txn_rollback();
                Err(e)
            }
        }
    }

    /// Commit the open transaction (see [`Db::txn`] for the sequence).
    fn txn_commit(&mut self) {
        let Some(t) = self.txn.take() else {
            unreachable!("commit without an open transaction")
        };
        for page in t.flush {
            self.pool.flush_page(PageId::new(AreaId::META, page));
        }
        for page in t.free_meta {
            self.meta_cache.invalidate(page);
            self.release_extent(Extent::new(AreaId::META, page, 1));
        }
        for ext in t.free_extents {
            self.release_extent(ext);
        }
        lobstore_obs::counter_add("core.mvcc.txn_commits", 1);
        lobstore_obs::counter_add("core.mvcc.txn_ops", u64::from(t.ops));
        self.commit_version();
    }

    /// Roll the open transaction back: restore pre-images, return the
    /// transaction's allocations (with compensating log records), and
    /// drop the queued flushes and frees.
    fn txn_rollback(&mut self) {
        let Some(t) = self.txn.take() else {
            unreachable!("rollback without an open transaction")
        };
        for (page, img) in &t.preimages {
            self.with_log_page_mut(*page, |p| p.copy_from_slice(&img[..]));
            // The overwrite may already be durable (a catalog self-flush,
            // a pool write-back); make the restored content durable too.
            self.pool.flush_page(PageId::new(AreaId::META, *page));
        }
        // Pages and extents allocated inside the transaction were never
        // reachable from any committed state, so they bypass deferral.
        // The compensating Free records cancel their Alloc records when
        // a later commit marker makes both replayable.
        for &page in &t.alloc_meta {
            let ext = Extent::new(AreaId::META, page, 1);
            self.log_record_free(ext);
            self.free_now(ext);
        }
        for &ext in &t.alloc_leaf {
            self.log_record_free(ext);
            self.free_now(ext);
        }
        lobstore_obs::counter_add("core.mvcc.txn_rollbacks", 1);
    }

    /// Absorb one finished operation's shadow effects into the open
    /// transaction (shadow.rs calls this instead of executing them).
    pub(crate) fn txn_absorb_op(
        &mut self,
        flush: Vec<u32>,
        free_meta: Vec<u32>,
        free_extents: Vec<Extent>,
    ) {
        let Some(t) = &mut self.txn else {
            unreachable!("absorb without an open transaction")
        };
        for page in flush {
            if !t.flush.contains(&page) {
                t.flush.push(page);
            }
        }
        t.free_meta.extend(free_meta);
        t.free_extents.extend(free_extents);
        t.ops += 1;
    }

    /// Transaction hook of the META write funnel: capture the committed
    /// pre-image of `page` on its first in-place overwrite. Pages the
    /// transaction itself allocated have no committed content to restore.
    pub(crate) fn txn_note_overwrite(&mut self, page: u32) {
        let img = match &self.txn {
            Some(t) if !t.alloc_meta.contains(&page) && !t.preimages.contains_key(&page) => {
                self.peek_meta(page)
            }
            _ => return,
        };
        if let Some(t) = &mut self.txn {
            t.preimages.insert(page, img);
            lobstore_obs::counter_add("core.mvcc.txn_preimages", 1);
        }
    }

    /// Transaction hook of the allocation path.
    pub(crate) fn txn_note_alloc(&mut self, ext: Extent) {
        if let Some(t) = &mut self.txn {
            if ext.area == AreaId::META {
                for p in ext.start..ext.end() {
                    t.alloc_meta.insert(p);
                }
            } else {
                t.alloc_leaf.push(ext);
            }
        }
    }

    /// Queue a free on the open transaction instead of releasing now.
    /// Returns `false` when no transaction is open (the caller releases
    /// immediately).
    pub(crate) fn txn_queue_free(&mut self, ext: Extent) -> bool {
        let Some(t) = &mut self.txn else { return false };
        if ext.area == AreaId::META {
            for p in ext.start..ext.end() {
                t.free_meta.push(p);
            }
        } else if ext.pages > 0 {
            t.free_extents.push(ext);
        }
        true
    }
}
