//! Per-operation shadowing context (§3.3).
//!
//! The paper's recovery assumption: *"all updates on index pages, except
//! the root, are shadowed and the new copy that contains the update is
//! flushed out to disk at the end of the operation that caused the
//! update."* An [`OpCtx`] tracks, for one logical operation:
//!
//! * which index pages have been shadowed (each page is copied at most
//!   once per operation, even if updated repeatedly);
//! * the set of new/updated pages to flush when the operation ends;
//! * the old page versions to return to the allocator afterwards.
//!
//! When the database is configured with `shadowing: false` (the ablation
//! case), pages are updated in place but still flushed at operation end.

use std::collections::{HashMap, HashSet};

use lobstore_buddy::Extent;
use lobstore_simdisk::{AreaId, PageId};

use crate::db::Db;

/// State for one logical large-object operation.
pub(crate) struct OpCtx {
    /// META pages created (or already shadowed) during this operation;
    /// shadowing one of these again is a no-op.
    created: HashSet<u32>,
    /// Old page → shadow copy, so re-shadowing the old number within one
    /// operation lands on the same copy.
    remap: HashMap<u32, u32>,
    /// META pages to flush at the end of the operation.
    flush: Vec<u32>,
    /// Old META page versions to free at the end of the operation.
    free_old: Vec<u32>,
    /// Superseded LEAF extents, released only when the operation ends so
    /// that no allocation inside the operation can reuse — and clobber —
    /// pages the pre-operation state still references ("leaving the old
    /// one intact until it is no longer needed for recovery", §3.3).
    free_extents: Vec<Extent>,
}

impl OpCtx {
    /// Start an empty operation context.
    pub fn new() -> Self {
        OpCtx {
            created: HashSet::new(),
            remap: HashMap::new(),
            flush: Vec::new(),
            free_old: Vec::new(),
            free_extents: Vec::new(),
        }
    }

    /// Release a superseded data extent when the operation ends.
    pub fn free_extent_later(&mut self, ext: Extent) {
        if ext.pages > 0 {
            self.free_extents.push(ext);
        }
    }

    /// Prepare META page `page` for update: returns the page number the
    /// update must be applied to. With shadowing on, this is a fresh page
    /// holding a copy of the old content; the old page is freed when the
    /// operation finishes. Idempotent within one operation.
    pub fn shadow_page(&mut self, db: &mut Db, page: u32) -> u32 {
        if !db.config().shadowing || self.created.contains(&page) {
            self.note_flush(page);
            return page;
        }
        if let Some(&new) = self.remap.get(&page) {
            self.note_flush(new);
            return new;
        }
        let new = db.alloc_meta_page();
        lobstore_obs::counter_add("core.shadow.pages", 1);
        // Copy old content into the new frame, through the Db funnels so
        // the node cache sees the write to the (possibly recycled) page.
        let mut buf = [0u8; lobstore_simdisk::PAGE_SIZE];
        db.with_meta_page(page, |p| buf.copy_from_slice(p));
        db.with_new_meta_page(new, |p| p.copy_from_slice(&buf));
        self.created.insert(new);
        db.op_created.insert(new);
        self.remap.insert(page, new);
        self.note_flush(new);
        self.free_old.push(page);
        new
    }

    /// Allocate a brand-new META index page (e.g. for a node split). It is
    /// flushed at operation end like any shadow copy.
    pub fn fresh_page(&mut self, db: &mut Db) -> u32 {
        lobstore_obs::counter_add("core.shadow.fresh_pages", 1);
        let page = db.alloc_meta_page();
        self.created.insert(page);
        db.op_created.insert(page);
        self.note_flush(page);
        page
    }

    /// Free a META page at operation end (e.g. a node emptied by a merge).
    pub fn free_page_later(&mut self, page: u32) {
        self.free_old.push(page);
    }

    fn note_flush(&mut self, page: u32) {
        if !self.flush.contains(&page) {
            self.flush.push(page);
        }
    }

    /// Deep self-audit (the `paranoid` feature): the page sets an
    /// operation tracks must be mutually consistent — a shadow copy is
    /// always a page created this operation and never one of the
    /// superseded originals, no superseded META page is queued twice,
    /// and no two queued LEAF extents overlap (either would become a
    /// double free at [`Self::finish`], handing live pages back to the
    /// allocator).
    #[cfg(feature = "paranoid")]
    pub(crate) fn paranoid_audit(&self) -> Result<(), String> {
        for (old, new) in &self.remap {
            if old == new {
                return Err(format!("page {old} shadowed onto itself"));
            }
            if !self.created.contains(new) {
                return Err(format!("shadow copy {new} of {old} not tracked as created"));
            }
            if self.created.contains(old) {
                return Err(format!(
                    "old version {old} of a shadowed page was allocated this operation"
                ));
            }
        }
        let mut seen = HashSet::new();
        for &p in &self.free_old {
            if !seen.insert(p) {
                return Err(format!("META page {p} queued for free twice"));
            }
        }
        let mut exts: Vec<&Extent> = self.free_extents.iter().collect();
        exts.sort_by_key(|e| (e.area, e.start));
        for (a, b) in exts.iter().zip(exts.iter().skip(1)) {
            if a.area == b.area && a.end() > b.start {
                return Err(format!("queued extents overlap: {a} and {b}"));
            }
        }
        Ok(())
    }

    /// End of operation: flush every updated index page (one 1-page write
    /// call each), release the superseded page versions and extents, and
    /// advance the committed version (DESIGN.md §16). Inside a
    /// transaction the flushes and frees are absorbed instead — the
    /// transaction commits them as one batch with a single version
    /// advance.
    pub fn finish(self, db: &mut Db) {
        #[cfg(feature = "paranoid")]
        if let Err(e) = self.paranoid_audit() {
            panic!("shadow-context invariant violated: {e}");
        }
        db.op_created.clear();
        if db.txn_active() {
            db.txn_absorb_op(self.flush, self.free_old, self.free_extents);
            return;
        }
        for page in self.flush {
            db.pool.flush_page(PageId::new(AreaId::META, page));
        }
        for page in self.free_old {
            db.free_meta_page(page);
        }
        for ext in self.free_extents {
            db.free_leaf(ext);
        }
        db.commit_version();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;

    #[test]
    fn shadow_copies_content_and_frees_old_at_finish() {
        let mut db = Db::paper_default();
        let old = db.alloc_meta_page();
        db.with_new_meta_page(old, |p| p[0] = 7);
        let pages_before = db.meta_pages_allocated();

        let mut ctx = OpCtx::new();
        let new = ctx.shadow_page(&mut db, old);
        assert_ne!(new, old);
        assert_eq!(db.with_meta_page(new, |p| p[0]), 7, "content copied");
        // Shadowing the same page again within the op is a no-op.
        assert_eq!(ctx.shadow_page(&mut db, new), new);
        ctx.finish(&mut db);
        assert_eq!(
            db.meta_pages_allocated(),
            pages_before,
            "old freed, new retained"
        );
    }

    #[test]
    fn finish_flushes_the_new_copy() {
        let mut db = Db::paper_default();
        let old = db.alloc_meta_page();
        db.with_new_meta_page(old, |p| p[0] = 1);
        let mut ctx = OpCtx::new();
        let new = ctx.shadow_page(&mut db, old);
        db.with_meta_page_mut(new, |p| p[1] = 2);
        let writes_before = db.io_stats().write_calls;
        ctx.finish(&mut db);
        assert_eq!(
            db.io_stats().write_calls,
            writes_before + 1,
            "exactly one flush write for the shadow copy"
        );
        // The flushed content is on disk.
        let mut out = [0u8; 2];
        db.pool().disk().peek(AreaId::META, new, &mut out);
        assert_eq!(out, [1, 2]);
    }

    #[cfg(feature = "paranoid")]
    #[test]
    fn overlapping_queued_extents_fail_the_audit() {
        let mut ctx = OpCtx::new();
        ctx.free_extent_later(Extent::new(AreaId::LEAF, 10, 4));
        ctx.free_extent_later(Extent::new(AreaId::LEAF, 12, 4));
        let err = ctx.paranoid_audit().unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[cfg(feature = "paranoid")]
    #[test]
    #[should_panic(expected = "shadow-context invariant violated")]
    fn finish_panics_on_double_queued_meta_page() {
        let mut db = Db::paper_default();
        let p = db.alloc_meta_page();
        let mut ctx = OpCtx::new();
        ctx.free_page_later(p);
        ctx.free_page_later(p);
        ctx.finish(&mut db);
    }

    #[test]
    fn shadowing_disabled_updates_in_place() {
        let mut db = Db::new(DbConfig {
            shadowing: false,
            ..DbConfig::default()
        });
        let page = db.alloc_meta_page();
        db.with_new_meta_page(page, |p| p[0] = 3);
        let mut ctx = OpCtx::new();
        assert_eq!(ctx.shadow_page(&mut db, page), page, "no copy");
        let allocated = db.meta_pages_allocated();
        let writes_before = db.io_stats().write_calls;
        ctx.finish(&mut db);
        assert_eq!(db.meta_pages_allocated(), allocated, "nothing freed");
        assert_eq!(
            db.io_stats().write_calls,
            writes_before + 1,
            "the updated page is still flushed at op end"
        );
    }
}
