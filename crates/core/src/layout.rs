//! Little helpers for fixed-layout page (de)serialization.
//!
//! All on-page integers are little-endian. These helpers keep offset
//! arithmetic in one place and panic on out-of-page access, which would
//! indicate a layout bug rather than bad input.

use lobstore_simdisk::bytes;

#[inline]
pub(crate) fn get_u16(page: &[u8], off: usize) -> u16 {
    bytes::le_u16(&page[off..])
}

#[inline]
pub(crate) fn put_u16(page: &mut [u8], off: usize, v: u16) {
    page[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub(crate) fn get_u32(page: &[u8], off: usize) -> u32 {
    bytes::le_u32(&page[off..])
}

#[inline]
pub(crate) fn put_u32(page: &mut [u8], off: usize, v: u32) {
    page[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub(crate) fn get_u64(page: &[u8], off: usize) -> u64 {
    bytes::le_u64(&page[off..])
}

#[inline]
pub(crate) fn put_u64(page: &mut [u8], off: usize, v: u64) {
    page[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut page = [0u8; 64];
        put_u16(&mut page, 0, 0xBEEF);
        put_u32(&mut page, 2, 0xDEAD_BEEF);
        put_u64(&mut page, 6, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&page, 0), 0xBEEF);
        assert_eq!(get_u32(&page, 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(&page, 6), 0x0123_4567_89AB_CDEF);
    }
}
