//! Error type shared by all large-object managers.

/// Errors surfaced by large-object operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LobError {
    /// A byte-range operation referenced bytes beyond the object.
    OutOfRange {
        /// Requested start offset.
        off: u64,
        /// Requested length.
        len: u64,
        /// Current object size.
        size: u64,
    },
    /// A single operation exceeded [`crate::MAX_OP_BYTES`].
    OperationTooLarge { len: u64 },
    /// A page failed structural validation (bad magic, impossible counts).
    Corrupt(String),
    /// An internal invariant was violated (returned by `check_invariants`).
    InvariantViolated(String),
}

impl std::fmt::Display for LobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LobError::OutOfRange { off, len, size } => write!(
                f,
                "byte range [{off}, {off}+{len}) out of range for object of {size} bytes"
            ),
            LobError::OperationTooLarge { len } => {
                write!(f, "operation of {len} bytes exceeds the per-op limit")
            }
            LobError::Corrupt(msg) => write!(f, "corrupt storage structure: {msg}"),
            LobError::InvariantViolated(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for LobError {}

/// Shorthand for results carrying a [`LobError`].
pub type Result<T> = std::result::Result<T, LobError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = LobError::OutOfRange {
            off: 10,
            len: 5,
            size: 12,
        };
        assert_eq!(
            e.to_string(),
            "byte range [10, 10+5) out of range for object of 12 bytes"
        );
        assert!(LobError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
    }
}
