//! The common large-object interface implemented by all three managers.

use crate::db::Db;
use crate::error::Result;

/// Which storage structure an object uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// EXODUS Storage Manager: fixed-size leaves under a count tree (§2.1).
    Esm,
    /// Starburst long-field manager: doubling extents, flat descriptor (§2.2).
    Starburst,
    /// EOS: variable-size segments under a count tree with threshold T (§2.3).
    Eos,
}

impl StorageKind {
    /// Stable on-disk tag (matches the root-page `kind` byte).
    pub fn as_u8(self) -> u8 {
        match self {
            StorageKind::Esm => 1,
            StorageKind::Eos => 2,
            StorageKind::Starburst => 3,
        }
    }

    /// Inverse of [`Self::as_u8`].
    pub fn from_u8(tag: u8) -> Option<StorageKind> {
        match tag {
            1 => Some(StorageKind::Esm),
            2 => Some(StorageKind::Eos),
            3 => Some(StorageKind::Starburst),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageKind::Esm => "ESM",
            StorageKind::Starburst => "Starburst",
            StorageKind::Eos => "EOS",
        })
    }
}

/// Storage-utilization breakdown of one object (§4.4.1: "storage
/// utilization compares the object size with the actual space required to
/// store the object including possible index pages").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Utilization {
    /// Logical object size in bytes.
    pub object_bytes: u64,
    /// Pages allocated to the object's data segments.
    pub data_pages: u64,
    /// Pages allocated to index structures (root/descriptor + interior
    /// index pages).
    pub index_pages: u64,
}

impl Utilization {
    /// Object bytes over all allocated bytes (data + index), in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        let denom = (self.data_pages + self.index_pages) * lobstore_simdisk::PAGE_SIZE as u64;
        if denom == 0 {
            return 1.0;
        }
        self.object_bytes as f64 / denom as f64
    }
}

/// One data segment of an object, as reported by
/// [`LargeObject::segments`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Object offset of the segment's first byte.
    pub offset: u64,
    /// First disk page of the segment (LEAF area).
    pub start_page: u32,
    /// Bytes stored in the segment.
    pub bytes: u64,
    /// Pages allocated to the segment (≥ `ceil(bytes / PAGE_SIZE)`; larger
    /// only for a tail segment still growing by appends).
    pub pages: u32,
}

/// Location of the contiguous stored segment holding one byte offset, as
/// reported by [`LargeObject::locate`]. Streaming readers use it to size
/// read-ahead spans so a buffered refill issues exactly the segment read
/// a single large [`LargeObject::read`] call would.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegSpan {
    /// Object offset of the segment's first byte.
    pub start: u64,
    /// Bytes stored contiguously in the segment.
    pub bytes: u64,
    /// First disk page of the segment (LEAF area).
    pub page: u32,
}

impl SegSpan {
    /// Object offset one past the segment's last byte.
    pub fn end(&self) -> u64 {
        // Both fields are bounded by the object size (<= MAX_OP_BYTES).
        // loblint: allow(arith-overflow)
        self.start + self.bytes
    }
}

/// A large object stored in the database.
///
/// All operations borrow the [`Db`] because every byte they touch moves
/// through the buffer pool and the simulated disk; the handle itself holds
/// only the root page number and immutable parameters.
pub trait LargeObject {
    /// Which structure this is.
    fn kind(&self) -> StorageKind;

    /// Page number (META area) of the object's root / descriptor page.
    fn root_page(&self) -> u32;

    /// Current object size in bytes.
    fn size(&self, db: &mut Db) -> u64;

    /// Append `bytes` at the end of the object.
    fn append(&mut self, db: &mut Db, bytes: &[u8]) -> Result<()>;

    /// Read `out.len()` bytes starting at `off` into `out`.
    fn read(&self, db: &mut Db, off: u64, out: &mut [u8]) -> Result<()>;

    /// Locate the contiguous stored segment containing byte `off`
    /// (requires `off < size`). For the tree schemes this is one costed
    /// descent; for Starburst a descriptor lookup.
    fn locate(&self, db: &mut Db, off: u64) -> Result<SegSpan>;

    /// Insert `bytes` so the first inserted byte lands at offset `off`
    /// (`off == size` appends).
    fn insert(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()>;

    /// Delete `len` bytes starting at `off`.
    fn delete(&mut self, db: &mut Db, off: u64, len: u64) -> Result<()>;

    /// Overwrite `bytes.len()` bytes starting at `off` (no size change).
    fn replace(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()>;

    /// Release build-time over-allocation at the object's tail (Starburst
    /// trims its last segment, §2.2; EOS likewise). No-op for ESM.
    fn trim(&mut self, db: &mut Db) -> Result<()>;

    /// Delete the object and free all of its storage. The handle must not
    /// be used afterwards.
    fn destroy(&mut self, db: &mut Db) -> Result<()>;

    /// Current storage-utilization breakdown. Cost-free (metric code).
    fn utilization(&self, db: &Db) -> Utilization;

    /// The object's data segments, left to right. Cost-free (inspection
    /// and tooling).
    fn segments(&self, db: &Db) -> Vec<SegmentInfo>;

    /// Every META page of the object's index structure, the root
    /// included. Cost-free (inspection and tooling).
    fn index_page_numbers(&self, db: &Db) -> Vec<u32>;

    /// Verify every structural invariant of this object. Cost-free.
    fn check_invariants(&self, db: &Db) -> Result<()>;

    /// Cost-free snapshot of the full object content, for verification
    /// against reference models in tests.
    fn snapshot(&self, db: &Db) -> Vec<u8>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_ratio() {
        let u = Utilization {
            object_bytes: 4096 * 3,
            data_pages: 3,
            index_pages: 1,
        };
        assert!((u.ratio() - 0.75).abs() < 1e-12);
        let empty = Utilization {
            object_bytes: 0,
            data_pages: 0,
            index_pages: 0,
        };
        assert_eq!(empty.ratio(), 1.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(StorageKind::Esm.to_string(), "ESM");
        assert_eq!(StorageKind::Starburst.to_string(), "Starburst");
        assert_eq!(StorageKind::Eos.to_string(), "EOS");
    }
}
