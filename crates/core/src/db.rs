//! The database context shared by all large-object managers: buffer pool
//! (owning the simulated disk) plus one buddy-space allocator per area.

use std::collections::HashSet;

use lobstore_buddy::{BuddyConfig, BuddyManager, Extent, FragStats};
use lobstore_bufpool::{BufferPool, PoolConfig};
use lobstore_simdisk::{AreaId, CostModel, IoStats, PageId, SimDisk, PAGE_SIZE};

use crate::alloclog::AllocLog;
use crate::health::{self, HealthSample};
use crate::node::{Node, RootHdr};
use crate::nodecache::{CachedMeta, NodeCache};
use crate::txn::TxnState;
use crate::version::VersionState;

/// Parsed META pages kept in [`Db`]'s node cache (see `nodecache.rs`).
const META_CACHE_ENTRIES: usize = 64;

/// Positional-tree fan-out limits. With the paper's 4 KB pages and 4-byte
/// counts and pointers, the root holds up to 507 pairs and interior index
/// pages 511 pairs (§4.1). Tests shrink these to exercise deep trees with
/// small objects.
#[derive(Copy, Clone, Debug)]
pub struct TreeConfig {
    /// Maximum `(count, ptr)` pairs in the root page.
    pub root_entries: usize,
    /// Maximum pairs in a non-root index page.
    pub node_entries: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            root_entries: 507,
            node_entries: 511,
        }
    }
}

impl TreeConfig {
    /// A tiny fan-out for tests that need multi-level trees cheaply.
    pub fn tiny(fanout: usize) -> Self {
        assert!(fanout >= 4, "fan-out below 4 breaks split invariants");
        TreeConfig {
            root_entries: fanout,
            node_entries: fanout,
        }
    }
}

/// Everything configurable about a database instance.
#[derive(Copy, Clone, Debug)]
pub struct DbConfig {
    pub cost: CostModel,
    pub pool: PoolConfig,
    pub tree: TreeConfig,
    /// Data pages per buddy space in the META area.
    pub meta_space_pages: u32,
    /// Data pages per buddy space in the LEAF area. Also the upper bound
    /// on any single segment (the paper's 32 MB max segment lives inside
    /// ≈64 MB spaces, §3.1).
    pub leaf_space_pages: u32,
    /// Whether updates are shadowed (§3.3). On by default; the
    /// `ablation_shadowing` bench turns it off.
    pub shadowing: bool,
    /// Keep a crash-recovery allocation log (DESIGN.md §16.3). Off by
    /// default — the paper's single-version path is bit-identical with
    /// the log disabled. Requires `shadowing`.
    pub alloc_log: bool,
}

impl Default for DbConfig {
    /// The paper's configuration (Table 1 + §3.1).
    fn default() -> Self {
        DbConfig {
            cost: CostModel::default(),
            pool: PoolConfig::default(),
            tree: TreeConfig::default(),
            meta_space_pages: 16 * 1024,
            leaf_space_pages: 16 * 1024,
            shadowing: true,
            alloc_log: false,
        }
    }
}

/// The database: two areas on one simulated disk, one buffer pool, and a
/// buddy allocator per area. All manager operations borrow this mutably —
/// the study is single-client (§3).
pub struct Db {
    pub(crate) pool: BufferPool,
    pub(crate) meta_alloc: BuddyManager,
    pub(crate) leaf_alloc: BuddyManager,
    pub(crate) cfg: DbConfig,
    /// Deserialized index-node overlay; pure wall-clock memoization
    /// (simulated I/O accounting is unchanged by hits).
    pub(crate) meta_cache: NodeCache,
    /// Operations completed through observed objects — the health
    /// sampler's tick source (see DESIGN.md §14).
    ops_total: u64,
    /// Publish a health sample every this many observed operations;
    /// 0 disables the sampler (the default).
    health_every: u64,
    /// MVCC version state: current version, snapshot pins, archived root
    /// pre-images, deferred frees (see `version.rs`).
    pub(crate) versions: VersionState,
    /// Open transaction, if any (see `txn.rs`).
    pub(crate) txn: Option<TxnState>,
    /// Allocation log, when [`DbConfig::alloc_log`] is enabled (see
    /// `alloclog.rs`).
    pub(crate) log: Option<AllocLog>,
    /// META pages allocated by the operation currently in flight —
    /// mirror of the shadow context's created set, so the write funnel
    /// can tell a fresh page's first write from an in-place overwrite of
    /// committed content.
    pub(crate) op_created: HashSet<u32>,
    /// Committed META pages overwritten in place since the last commit
    /// (root/catalog flips) — imaged into the allocation log at commit.
    pub(crate) dirty_roots: Vec<u32>,
}

impl Db {
    /// Build a database over a fresh two-area simulated disk.
    pub fn new(cfg: DbConfig) -> Self {
        let disk = SimDisk::new(2, cfg.cost);
        let mut db = Db {
            pool: BufferPool::new(disk, cfg.pool),
            meta_alloc: BuddyManager::new(BuddyConfig::new(AreaId::META, cfg.meta_space_pages)),
            leaf_alloc: BuddyManager::new(BuddyConfig::new(AreaId::LEAF, cfg.leaf_space_pages)),
            cfg,
            meta_cache: NodeCache::new(META_CACHE_ENTRIES),
            ops_total: 0,
            health_every: 0,
            versions: VersionState::new(),
            txn: None,
            log: None,
            op_created: HashSet::new(),
            dirty_roots: Vec::new(),
        };
        if cfg.alloc_log {
            db.init_alloc_log();
        }
        db
    }

    /// A database with the paper's exact parameters.
    pub fn paper_default() -> Self {
        Db::new(DbConfig::default())
    }

    /// The configuration this database was built with.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// The buffer pool (and through it, the disk).
    pub fn pool(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Cumulative I/O statistics of the underlying disk.
    pub fn io_stats(&self) -> IoStats {
        self.pool.io_stats()
    }

    /// Zero the disk's I/O counters (page contents are untouched).
    pub fn reset_io_stats(&mut self) {
        self.pool.disk_mut().reset_stats();
    }

    /// Allocate one page in the META area (index pages, roots, shadows).
    pub fn alloc_meta_page(&mut self) -> u32 {
        let page = self.meta_alloc.allocate(&mut self.pool, 1).start;
        self.note_alloc(Extent::new(AreaId::META, page, 1));
        page
    }

    /// Free one META page. Inside a transaction the free queues until
    /// commit; while a snapshot pins the current state it defers until
    /// the pin is released (see `version.rs`).
    pub fn free_meta_page(&mut self, page: u32) {
        self.meta_cache.invalidate(page);
        let ext = Extent::new(AreaId::META, page, 1);
        if self.txn_queue_free(ext) {
            return;
        }
        self.release_extent(ext);
    }

    /// Allocate a contiguous leaf segment of `pages` pages.
    pub fn alloc_leaf(&mut self, pages: u32) -> Extent {
        let ext = self.leaf_alloc.allocate(&mut self.pool, pages);
        self.note_alloc(ext);
        ext
    }

    /// Free a leaf extent (whole segments or trimmed portions). Queues
    /// or defers like [`Self::free_meta_page`].
    pub fn free_leaf(&mut self, ext: Extent) {
        if self.txn_queue_free(ext) {
            return;
        }
        self.release_extent(ext);
    }

    /// Allocation hook: record the new extent with the open transaction
    /// (for rollback) and the allocation log (for replay).
    fn note_alloc(&mut self, ext: Extent) {
        self.txn_note_alloc(ext);
        self.log_record_alloc(ext);
    }

    /// Logical free of `ext`: recorded in the allocation log now (the
    /// committed state has it free), physically released now unless a
    /// pinned snapshot may still read the pages — then the release
    /// defers until the last such pin is gone.
    pub(crate) fn release_extent(&mut self, ext: Extent) {
        self.log_record_free(ext);
        if self.versions.pinned() {
            self.defer_free(ext);
        } else {
            self.free_now(ext);
        }
    }

    /// Physically return `ext` to its allocator, invalidating any cached
    /// parses of META pages (a snapshot walker may have cached them).
    pub(crate) fn free_now(&mut self, ext: Extent) {
        if ext.area == AreaId::META {
            for p in ext.start..ext.end() {
                self.meta_cache.invalidate(p);
            }
            self.meta_alloc.free(&mut self.pool, ext);
        } else {
            self.leaf_alloc.free(&mut self.pool, ext);
        }
    }

    /// Pages currently allocated in the LEAF area.
    pub fn leaf_pages_allocated(&self) -> u64 {
        self.leaf_alloc.allocated_pages()
    }

    /// Pages currently allocated in the META area.
    pub fn meta_pages_allocated(&self) -> u64 {
        self.meta_alloc.allocated_pages()
    }

    /// Largest single segment this database can allocate, in pages.
    pub fn max_segment_pages(&self) -> u32 {
        self.cfg.leaf_space_pages
    }

    /// The LEAF allocator's current allocation map (for consistency
    /// checking).
    pub fn leaf_allocated_ranges(&mut self) -> Vec<Extent> {
        let Db {
            pool, leaf_alloc, ..
        } = self;
        leaf_alloc.allocated_ranges(pool)
    }

    /// The META allocator's current allocation map.
    pub fn meta_allocated_ranges(&mut self) -> Vec<Extent> {
        let Db {
            pool, meta_alloc, ..
        } = self;
        meta_alloc.allocated_ranges(pool)
    }

    /// Convenience: fix-read a META page, run `f` on its bytes, unfix.
    /// (Low-level page access for layers that keep their own structures
    /// in META pages, such as the record store.)
    pub fn with_meta_page<R>(&mut self, page: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        let g = self.pool.guard(PageId::new(AreaId::META, page));
        f(&g[..])
    }

    /// Convenience: fix a META page for update, run `f`, unfix. The page
    /// is marked dirty; flushing is the caller's (shadow context's) job.
    ///
    /// This is a META *write funnel*: any cached parse of the page is
    /// dropped here, which keeps the node cache consistent for every
    /// index update in the tree/starburst/catalog layers.
    pub fn with_meta_page_mut<R>(&mut self, page: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.meta_cache.invalidate(page);
        self.note_meta_overwrite(page);
        let mut g = self.pool.guard_mut(PageId::new(AreaId::META, page));
        f(&mut g[..])
    }

    /// Versioning hooks of the META write funnel, run *before* the
    /// mutation. By the shadowing discipline, an in-place write through
    /// this funnel to a page the current operation did not allocate is a
    /// root/header/catalog flip of committed content — exactly the
    /// writes MVCC snapshots, open transactions, and the allocation log
    /// must see coming. On the default path (no pins, no transaction, no
    /// log) this is three cheap checks.
    fn note_meta_overwrite(&mut self, page: u32) {
        if self.op_created.contains(&page) {
            return;
        }
        self.archive_page_preimage(page);
        self.txn_note_overwrite(page);
        self.log_note_overwrite(page);
    }

    /// Like [`Self::with_meta_page_mut`] but for a freshly allocated page
    /// that need not be read from disk. Also a META write funnel (the
    /// page number may be recycled from a freed index page).
    pub fn with_new_meta_page<R>(&mut self, page: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.meta_cache.invalidate(page);
        let mut g = self.pool.guard_new(PageId::new(AreaId::META, page));
        f(&mut g[..])
    }

    /// Fix-read a META page as a parsed non-root index [`Node`], run `f`
    /// on it, unfix. The pool fix/unfix (and therefore all simulated I/O
    /// and hit/miss accounting) is identical to [`Self::with_meta_page`];
    /// only the deserialization is memoized in the node cache.
    pub(crate) fn with_meta_node<R>(&mut self, page: u32, f: impl FnOnce(&Node) -> R) -> R {
        let r = self.pool.fix(PageId::new(AreaId::META, page));
        if matches!(self.meta_cache.get(page), Some(CachedMeta::Node(_))) {
            lobstore_obs::counter_add("core.nodecache.hits", 1);
        } else {
            lobstore_obs::counter_add("core.nodecache.misses", 1);
            let node = self.pool.with_page(r, |p| Node::read_page(p));
            self.meta_cache.insert(page, CachedMeta::Node(node));
        }
        self.pool.unfix(r);
        match self.meta_cache.get(page) {
            Some(CachedMeta::Node(node)) => f(node),
            _ => unreachable!("entry inserted above"),
        }
    }

    /// Like [`Self::with_meta_node`] for a root/descriptor page: `f` gets
    /// the parsed header and entry node (the Starburst descriptor shares
    /// the root-page layout).
    pub(crate) fn with_meta_root<R>(
        &mut self,
        page: u32,
        f: impl FnOnce(&RootHdr, &Node) -> R,
    ) -> R {
        let r = self.pool.fix(PageId::new(AreaId::META, page));
        if matches!(self.meta_cache.get(page), Some(CachedMeta::Root(..))) {
            lobstore_obs::counter_add("core.nodecache.hits", 1);
        } else {
            lobstore_obs::counter_add("core.nodecache.misses", 1);
            let (hdr, node) = self.pool.with_page(r, |p| {
                let hdr = RootHdr::read(p);
                let node = Node::read_root(p, &hdr);
                (hdr, node)
            });
            self.meta_cache.insert(page, CachedMeta::Root(hdr, node));
        }
        self.pool.unfix(r);
        match self.meta_cache.get(page) {
            Some(CachedMeta::Root(hdr, node)) => f(hdr, node),
            _ => unreachable!("entry inserted above"),
        }
    }

    /// Fix-read a META page as a parsed [`Node`] through a shared
    /// reference. Simulated I/O is identical to [`Self::with_meta_node`]
    /// (the page is fixed either way); the node-cache memo is bypassed
    /// because it needs `&mut self`. This is the descent step of
    /// concurrent snapshot scans, which hold only the read side of
    /// [`crate::SharedDb`]'s lock.
    pub(crate) fn read_meta_node_ref(&self, page: u32) -> Node {
        lobstore_obs::counter_add("core.nodecache.ref_reads", 1);
        let r = self.pool.fix(PageId::new(AreaId::META, page));
        let node = self.pool.with_page(r, |p| Node::read_page(p));
        self.pool.unfix(r);
        node
    }

    /// Simulate a crash and restart: the buffer pool loses every unflushed
    /// page (no write-back) and the space managers re-attach to whatever
    /// the disk holds, with the paper's optimistic superdirectory
    /// initialization (§3.1).
    ///
    /// The shadowing discipline (§3.3) guarantees that an object whose
    /// state was flushed before the crash reads back exactly — later
    /// unflushed operations never overwrite the bytes that state
    /// references.
    /// With the allocation log enabled, recovery instead replays the log
    /// to the last committed version: allocators rebuilt from the record
    /// stream, in-place-written pages restored from their committed
    /// images (see `alloclog.rs`). An open transaction is aborted; all
    /// snapshots are released (they are in-memory handles).
    pub fn crash_and_reboot(&mut self) {
        self.meta_cache.clear();
        self.pool.crash();
        self.clear_version_state();
        self.txn = None;
        self.op_created.clear();
        self.dirty_roots.clear();
        if self.log.is_some() {
            self.replay_alloc_log();
            return;
        }
        self.meta_alloc = BuddyManager::open(
            BuddyConfig::new(AreaId::META, self.cfg.meta_space_pages),
            &mut self.pool,
        );
        self.leaf_alloc = BuddyManager::open(
            BuddyConfig::new(AreaId::LEAF, self.cfg.leaf_space_pages),
            &mut self.pool,
        );
    }

    /// Flush everything that is dirty — the "checkpoint" matching the end
    /// of the paper's operations (index shadows are already flushed per
    /// op; this adds the root pages and space directories).
    /// With the allocation log enabled, the checkpoint also compacts the
    /// log to a snapshot of the live state (bounding its chain).
    ///
    /// # Panics
    /// If a transaction is open — flushing uncommitted in-place root
    /// updates would break its atomicity.
    pub fn checkpoint(&mut self) {
        assert!(
            !self.txn_active(),
            "checkpoint inside a transaction would make uncommitted state durable"
        );
        self.pool.flush_all();
        self.compact_alloc_log();
    }

    /// Checkpoint and serialize the whole database to `w` (the disk-image
    /// format of `lobstore-simdisk`). Images are always log-less: the
    /// allocation log is retired before the image is cut and re-started
    /// (from the live state) afterwards, so a loaded database never sees
    /// another session's chain pages.
    pub fn save_image(&mut self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        let had_log = self.log.is_some();
        self.retire_alloc_log();
        self.checkpoint();
        let r = self.pool.disk().write_image(w);
        if had_log {
            self.init_alloc_log();
            self.compact_alloc_log();
        }
        r
    }

    /// Load a database from an image. The image's cost model is
    /// authoritative; pool/tree/space parameters come from `cfg` and must
    /// match those the image was created with (the space sizes determine
    /// the directory-page positions).
    pub fn load_image(r: &mut impl std::io::Read, cfg: DbConfig) -> std::io::Result<Db> {
        let disk = SimDisk::read_image(r)?;
        let cfg = DbConfig {
            cost: disk.cost_model(),
            ..cfg
        };
        let mut pool = BufferPool::new(disk, cfg.pool);
        let meta_alloc = BuddyManager::open(
            BuddyConfig::new(AreaId::META, cfg.meta_space_pages),
            &mut pool,
        );
        let leaf_alloc = BuddyManager::open(
            BuddyConfig::new(AreaId::LEAF, cfg.leaf_space_pages),
            &mut pool,
        );
        let mut db = Db {
            pool,
            meta_alloc,
            leaf_alloc,
            cfg,
            meta_cache: NodeCache::new(META_CACHE_ENTRIES),
            ops_total: 0,
            health_every: 0,
            versions: VersionState::new(),
            txn: None,
            log: None,
            op_created: HashSet::new(),
            dirty_roots: Vec::new(),
        };
        if cfg.alloc_log {
            // Images are log-less (see save_image): start a fresh log
            // seeded with a snapshot of the loaded state.
            db.init_alloc_log();
            db.compact_alloc_log();
        }
        Ok(db)
    }

    /// [`Self::save_image`] to a file path.
    pub fn save_to_path(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save_image(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// [`Self::load_image`] from a file path.
    pub fn load_from_path(path: impl AsRef<std::path::Path>, cfg: DbConfig) -> std::io::Result<Db> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Db::load_image(&mut r, cfg)
    }

    /// Deep allocator verification (the `paranoid` feature): both buddy
    /// managers re-read their space directories and cross-check the
    /// bitmaps against their in-memory bookkeeping.
    #[cfg(feature = "paranoid")]
    pub fn paranoid_verify_allocators(&mut self) -> crate::error::Result<()> {
        use crate::error::LobError;
        let Db {
            pool,
            meta_alloc,
            leaf_alloc,
            ..
        } = self;
        meta_alloc
            .paranoid_verify(pool)
            .map_err(|e| LobError::InvariantViolated(format!("META allocator: {e}")))?;
        leaf_alloc
            .paranoid_verify(pool)
            .map_err(|e| LobError::InvariantViolated(format!("LEAF allocator: {e}")))?;
        Ok(())
    }

    /// Deep node-cache verification (the `paranoid` feature): every
    /// cached parse must equal a fresh parse of the page's current bytes.
    /// A mismatch means a META write bypassed the invalidation funnels.
    #[cfg(feature = "paranoid")]
    pub fn paranoid_verify_node_cache(&mut self) -> crate::error::Result<()> {
        use crate::error::LobError;
        for page in self.meta_cache.pages() {
            let bytes = self.peek_meta(page);
            let stale = match self.meta_cache.peek(page) {
                Some(CachedMeta::Node(node)) => *node != Node::read_page(&bytes[..]),
                Some(CachedMeta::Root(hdr, node)) => {
                    let fresh_hdr = RootHdr::read(&bytes[..]);
                    *hdr != fresh_hdr || *node != Node::read_root(&bytes[..], &fresh_hdr)
                }
                None => false,
            };
            if stale {
                return Err(LobError::InvariantViolated(format!(
                    "node cache stale for META page {page}: cached parse \
                     disagrees with the page bytes"
                )));
            }
        }
        Ok(())
    }

    /// Cost-free snapshot of a META page's current content (newest pool
    /// copy if resident, else the disk copy). For verification and metric
    /// code only.
    pub(crate) fn peek_meta(&self, page: u32) -> Box<[u8; PAGE_SIZE]> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.pool
            .peek_page(PageId::new(AreaId::META, page), &mut buf);
        buf
    }

    /// Cost-free snapshot of a LEAF page (newest pool copy if resident).
    pub(crate) fn peek_leaf_page(&self, page: u32) -> Box<[u8; PAGE_SIZE]> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.pool
            .peek_page(PageId::new(AreaId::LEAF, page), &mut buf);
        buf
    }

    /// Cost-free fragmentation recount of the LEAF allocator (peeked
    /// directory pages; `IoStats` are untouched).
    pub fn leaf_frag_stats(&self) -> FragStats {
        self.leaf_alloc.frag_stats(&self.pool)
    }

    /// Cost-free fragmentation recount of the META allocator.
    pub fn meta_frag_stats(&self) -> FragStats {
        self.meta_alloc.frag_stats(&self.pool)
    }

    /// Enable (or with 0, disable) the periodic health sampler: every
    /// `every_ops` observed operations, [`Self::sample_health`] runs and
    /// publishes `health.*` gauges plus time-series points ticked by the
    /// operation count. Off by default — sampling is cost-free in
    /// simulated I/O but walks every space directory, so it is opt-in
    /// for benches, `lobctl`, and tests.
    pub fn set_health_sampling(&mut self, every_ops: u64) {
        self.health_every = every_ops;
    }

    /// Operations observed so far (ticks of the health sampler). Counts
    /// every operation routed through the observed wrapper
    /// ([`crate::ManagerSpec::create`] / [`crate::open_object`] objects),
    /// whether or not sampling is enabled.
    pub fn health_ops(&self) -> u64 {
        self.ops_total
    }

    /// Take one health sample *now*: recount both allocators cost-free,
    /// publish `health.leaf.*` / `health.meta.*` gauges, histogram the
    /// free-run lengths, and append series points at the current
    /// operation tick. Returns the sample for direct inspection.
    pub fn sample_health(&self) -> HealthSample {
        let sample = HealthSample {
            tick: self.ops_total,
            leaf: self.leaf_frag_stats(),
            meta: self.meta_frag_stats(),
        };
        health::publish_area("leaf", &sample.leaf, Some(sample.tick));
        health::publish_area("meta", &sample.meta, Some(sample.tick));
        sample
    }

    /// One observed operation completed: advance the tick and, when the
    /// sampler is enabled and the cadence divides the count, publish a
    /// sample. Called by the observation wrapper after every operation;
    /// uses only cost-free inspection, so the wrapper's simulated-I/O
    /// neutrality is preserved.
    pub(crate) fn note_op(&mut self) {
        self.ops_total += 1;
        if self.health_every > 0 && self.ops_total.is_multiple_of(self.health_every) {
            self.sample_health();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table_1() {
        let cfg = DbConfig::default();
        assert_eq!(cfg.cost.seek_us, 33_000);
        assert_eq!(cfg.pool.frames, 12);
        assert_eq!(cfg.pool.max_buffered_seg, 4);
        assert_eq!(cfg.tree.root_entries, 507);
        assert_eq!(cfg.tree.node_entries, 511);
        assert!(cfg.shadowing);
    }

    #[test]
    fn meta_and_leaf_allocations_are_independent() {
        let mut db = Db::paper_default();
        let m = db.alloc_meta_page();
        let l = db.alloc_leaf(8);
        assert_eq!(db.meta_pages_allocated(), 1);
        assert_eq!(db.leaf_pages_allocated(), 8);
        db.free_meta_page(m);
        db.free_leaf(l);
        assert_eq!(db.meta_pages_allocated(), 0);
        assert_eq!(db.leaf_pages_allocated(), 0);
    }

    #[test]
    fn meta_page_helpers_roundtrip() {
        let mut db = Db::paper_default();
        let p = db.alloc_meta_page();
        db.with_new_meta_page(p, |page| page[100] = 42);
        let v = db.with_meta_page(p, |page| page[100]);
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "fan-out below 4")]
    fn tiny_tree_config_guards_fanout() {
        TreeConfig::tiny(3);
    }

    #[test]
    fn image_roundtrip_preserves_database() {
        use crate::{EosObject, EosParams, LargeObject};
        let mut db = Db::paper_default();
        let mut obj = EosObject::create(&mut db, EosParams::default()).unwrap();
        obj.append(&mut db, b"image me").unwrap();
        let root = obj.root_page();
        let mut img = Vec::new();
        db.save_image(&mut img).unwrap();

        let mut db2 = Db::load_image(&mut img.as_slice(), DbConfig::default()).unwrap();
        let obj2 = EosObject::open(&mut db2, root).unwrap();
        assert_eq!(obj2.snapshot(&db2), b"image me");
        assert_eq!(db2.leaf_pages_allocated(), db.leaf_pages_allocated());
        assert_eq!(db2.meta_pages_allocated(), db.meta_pages_allocated());
        // The restored database keeps working.
        let mut obj2 = obj2;
        obj2.append(&mut db2, b" again").unwrap();
        assert_eq!(obj2.snapshot(&db2), b"image me again");
    }
}
