//! The EXODUS Storage Manager (ESM) large-object structure (§2.1, §3.4).
//!
//! Fixed-size leaf segments (a per-object parameter, the paper uses 1, 4,
//! 16, and 64 pages) indexed by the positional count tree. The interesting
//! algorithms live at the leaf level:
//!
//! * **append** — fill the rightmost leaf in place; on overflow,
//!   redistribute the new bytes, the rightmost leaf, and its left
//!   neighbour (if it has free space) so that all but the two rightmost
//!   leaves are full and those two are each at least half full (§4.2).
//!   Output leaves whose content would be byte-identical to an existing
//!   leaf are left untouched, so exact-fit appends write only new leaves.
//! * **insert** — the *basic* algorithm splits the target leaf and the new
//!   bytes evenly over new leaves; the *improved* algorithm (the paper's
//!   default) first tries to redistribute with a neighbour to avoid
//!   creating a leaf \[Care86\].
//! * **delete** — whole leaves are freed without data I/O; boundary leaves
//!   are rewritten, then re-balanced with a neighbour if under half full.
//!
//! Updates that overwrite useful bytes shadow the whole leaf (allocate a
//! new segment, write it, free the old one); pure appends go in place
//! (§3.3). Only pages actually holding bytes are ever transferred.

use lobstore_buddy::Extent;
use lobstore_simdisk::{cast, AreaId, PAGE_SIZE, PAGE_SIZE_U64};

use crate::db::Db;
use crate::error::{LobError, Result};
use crate::node::{Entry, RootHdr};
use crate::object::{LargeObject, StorageKind, Utilization};
use crate::segdata::{
    append_in_place, append_sizes, even_sizes, patch_in_place, read_seg_bytes, write_new_seg,
};
use crate::shadow::OpCtx;
use crate::tree::{LeafPos, PosTree};
use crate::MAX_OP_BYTES;

const ESM_MAGIC: u32 = 0x4553_4D31; // "ESM1"
const KIND_ESM: u8 = 1;

/// Byte-insert algorithm variant \[Care86\].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum EsmInsertAlgo {
    /// On overflow, split the target leaf and new bytes evenly.
    Basic,
    /// First try redistributing with one neighbour to avoid a new leaf —
    /// "significant gains in storage utilization with minimal additional
    /// insert cost" (§3.4). The paper's experiments use this.
    #[default]
    Improved,
}

/// Creation parameters for an ESM object.
#[derive(Copy, Clone, Debug)]
pub struct EsmParams {
    /// Leaf segment size in pages; fixed for the object's lifetime.
    pub leaf_pages: u32,
}

impl Default for EsmParams {
    fn default() -> Self {
        EsmParams { leaf_pages: 4 }
    }
}

/// Handle to one ESM large object.
#[derive(Debug)]
pub struct EsmObject {
    tree: PosTree,
    leaf_pages: u32,
    /// Insert algorithm; the paper's results use [`EsmInsertAlgo::Improved`].
    pub insert_algo: EsmInsertAlgo,
    /// Ablation switch reproducing the \[Care86\] prototype assumption the
    /// paper criticizes in §4.5: read entire leaf segments even when only
    /// a few pages are needed.
    pub whole_leaf_io: bool,
}

impl EsmObject {
    /// Create a new, empty ESM object.
    pub fn create(db: &mut Db, params: EsmParams) -> Result<Self> {
        if params.leaf_pages == 0 || params.leaf_pages > db.max_segment_pages() {
            return Err(LobError::Corrupt(format!(
                "leaf size {} pages out of range",
                params.leaf_pages
            )));
        }
        let root = db.alloc_meta_page();
        let hdr = RootHdr {
            magic: ESM_MAGIC,
            kind: KIND_ESM,
            level: 0,
            n_entries: 0,
            size: 0,
            params: u64::from(params.leaf_pages),
            last_seg_alloc: 0,
            last_seg_ptr: 0,
        };
        db.with_new_meta_page(root, |p| hdr.write(p));
        db.pool
            .flush_page(lobstore_simdisk::PageId::new(AreaId::META, root));
        Ok(EsmObject {
            tree: PosTree::new(root),
            leaf_pages: params.leaf_pages,
            insert_algo: EsmInsertAlgo::default(),
            whole_leaf_io: false,
        })
    }

    /// Open an existing ESM object by its root page.
    pub fn open(db: &mut Db, root_page: u32) -> Result<Self> {
        let tree = PosTree::new(root_page);
        let hdr = tree.read_hdr(db);
        if hdr.magic != ESM_MAGIC || hdr.kind != KIND_ESM {
            return Err(LobError::Corrupt(format!(
                "page {root_page} is not an ESM object root"
            )));
        }
        Ok(EsmObject {
            tree,
            leaf_pages: cast::to_u32(hdr.params),
            insert_algo: EsmInsertAlgo::default(),
            whole_leaf_io: false,
        })
    }

    /// Leaf segment size in pages.
    pub fn leaf_pages(&self) -> u32 {
        self.leaf_pages
    }

    /// Leaf capacity in bytes.
    fn cap(&self) -> u64 {
        u64::from(self.leaf_pages) * PAGE_SIZE_U64
    }

    fn leaf_extent(&self, ptr: u32) -> Extent {
        Extent::new(AreaId::LEAF, ptr, self.leaf_pages)
    }

    fn check_range(&self, db: &mut Db, off: u64, len: u64) -> Result<u64> {
        let size = self.tree.read_hdr(db).size;
        if off.checked_add(len).is_none_or(|end| end > size) {
            return Err(LobError::OutOfRange { off, len, size });
        }
        if len > MAX_OP_BYTES as u64 {
            return Err(LobError::OperationTooLarge { len });
        }
        Ok(size)
    }

    /// Write `bytes` into a freshly allocated leaf; returns its entry.
    fn new_leaf(&self, db: &mut Db, bytes: &[u8]) -> Entry {
        let ext = write_new_seg(db, self.leaf_pages, bytes);
        Entry {
            count: bytes.len() as u64,
            ptr: ext.start,
        }
    }

    fn bump_size(&self, db: &mut Db, delta: i64) {
        let mut hdr = self.tree.read_hdr(db);
        hdr.size = (hdr.size as i64 + delta) as u64;
        self.tree.write_hdr(db, &hdr);
    }

    /// The append-overflow redistribution of §4.2. `pos` is the rightmost
    /// leaf; `bytes` did not fit in its free space.
    fn append_overflow(
        &self,
        db: &mut Db,
        ctx: &mut OpCtx,
        pos: LeafPos,
        bytes: &[u8],
    ) -> Result<()> {
        let cap = self.cap();
        // Participants, leftmost first: the left neighbour if it has free
        // space, then the rightmost leaf.
        let mut parts: Vec<LeafPos> = Vec::with_capacity(2);
        if pos.leaf_start > 0 {
            let ln = self.tree.try_descend(db, pos.leaf_start - 1)?;
            if ln.entry.count < cap {
                parts.push(ln);
            }
        }
        parts.push(pos);
        let existing: u64 = parts.iter().map(|p| p.entry.count).sum();
        let sizes = append_sizes(existing + bytes.len() as u64, cap);

        // Skip leading output leaves that would be byte-identical to an
        // existing participant (same size at the same stream position).
        let mut skip = 0usize;
        while skip < parts.len() && sizes[skip] == parts[skip].entry.count {
            skip += 1;
        }

        // Materialize the rewritten byte stream.
        let mut buf = Vec::new();
        for p in &parts[skip..] {
            buf.extend(read_seg_bytes(db, p.entry.ptr, 0, p.entry.count));
        }
        buf.extend_from_slice(bytes);

        let mut new_entries = Vec::with_capacity(sizes.len() - skip);
        let mut off = 0usize;
        for &s in &sizes[skip..] {
            let s = cast::to_usize(s);
            new_entries.push(self.new_leaf(db, &buf[off..off + s]));
            off += s;
        }
        debug_assert_eq!(off, buf.len());

        for p in &parts[skip..] {
            ctx.free_extent_later(self.leaf_extent(p.entry.ptr));
        }

        match parts.len() - skip {
            0 => {
                // Everything kept; the new leaves follow the rightmost one.
                let last = match parts.last() {
                    Some(p) => p,
                    None => unreachable!("parts always includes the rightmost leaf"),
                };
                let mut repl = Vec::with_capacity(1 + new_entries.len());
                repl.push(last.entry);
                repl.extend(new_entries);
                self.tree.replace_entry(db, ctx, &last.path, repl);
            }
            1 => {
                let target = &parts[skip];
                self.tree.replace_entry(db, ctx, &target.path, new_entries);
            }
            2 => {
                // Both the neighbour and the rightmost leaf were rewritten:
                // remove the neighbour's entry, re-find the rightmost leaf
                // (offsets shifted), and replace it with the new entries.
                self.tree.remove_entry(db, ctx, &parts[0].path);
                let again = self.tree.try_descend(db, parts[0].leaf_start)?;
                debug_assert_eq!(again.entry.ptr, parts[1].entry.ptr);
                self.tree.replace_entry(db, ctx, &again.path, new_entries);
            }
            _ => unreachable!("at most two participants"),
        }
        Ok(())
    }

    /// Rewrite the leaf at `pos` with `content` (shadowed, or in place
    /// when shadowing is off and the change starts at `keep_prefix`
    /// unchanged bytes). Returns the replacement entry.
    fn rewrite_leaf(
        &self,
        db: &mut Db,
        ctx: &mut OpCtx,
        pos: &LeafPos,
        content: &[u8],
        keep_prefix: u64,
    ) -> Entry {
        if db.config().shadowing {
            let e = self.new_leaf(db, content);
            ctx.free_extent_later(self.leaf_extent(pos.entry.ptr));
            e
        } else {
            // In place: write only the pages from the first changed byte on.
            let first_page = keep_prefix / PAGE_SIZE_U64;
            let from = cast::to_usize(first_page * PAGE_SIZE_U64);
            db.pool.write_direct(
                AreaId::LEAF,
                pos.entry.ptr + cast::to_u32(first_page),
                &content[from..],
            );
            Entry {
                count: content.len() as u64,
                ptr: pos.entry.ptr,
            }
        }
    }

    /// If the leaf at `at` is under half full (and not alone), merge with
    /// or borrow from a neighbour.
    fn fix_underflow(&self, db: &mut Db, ctx: &mut OpCtx, at: u64) -> Result<()> {
        let cap = self.cap();
        let Some(pos) = self.tree.descend(db, at) else {
            return Ok(());
        };
        if pos.entry.count * 2 >= cap {
            return Ok(());
        }
        // Prefer the left neighbour.
        let (left, right) = if pos.leaf_start > 0 {
            let ln = self.tree.try_descend(db, pos.leaf_start - 1)?;
            (ln, pos)
        } else {
            let total = self.tree.read_hdr(db).size;
            if pos.leaf_end() >= total {
                return Ok(()); // only leaf in the object
            }
            let rn = self.tree.try_descend(db, pos.leaf_end())?;
            (pos, rn)
        };
        let mut buf = read_seg_bytes(db, left.entry.ptr, 0, left.entry.count);
        buf.extend(read_seg_bytes(db, right.entry.ptr, 0, right.entry.count));
        let total = buf.len() as u64;
        let new_entries: Vec<Entry> = if total <= cap {
            vec![self.new_leaf(db, &buf)]
        } else {
            let sizes = even_sizes(total, cap);
            debug_assert_eq!(sizes.len(), 2);
            let split = cast::to_usize(sizes[0]);
            vec![
                self.new_leaf(db, &buf[..split]),
                self.new_leaf(db, &buf[split..]),
            ]
        };
        ctx.free_extent_later(self.leaf_extent(left.entry.ptr));
        ctx.free_extent_later(self.leaf_extent(right.entry.ptr));
        self.tree.remove_entry(db, ctx, &left.path);
        let again = self.tree.try_descend(db, left.leaf_start)?;
        debug_assert_eq!(again.entry.ptr, right.entry.ptr);
        self.tree.replace_entry(db, ctx, &again.path, new_entries);
        Ok(())
    }

    fn insert_inner(&mut self, db: &mut Db, ctx: &mut OpCtx, off: u64, bytes: &[u8]) -> Result<()> {
        let cap = self.cap();
        let len = bytes.len() as u64;
        let pos = self.tree.try_descend(db, off)?;
        let p = cast::to_usize(pos.off_in_leaf);

        if pos.entry.count + len <= cap {
            // Fits in the target leaf: rewrite it.
            let mut content = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
            content.splice(p..p, bytes.iter().copied());
            let e = self.rewrite_leaf(db, ctx, &pos, &content, pos.off_in_leaf);
            self.tree.replace_entry(db, ctx, &pos.path, vec![e]);
            return Ok(());
        }

        if self.insert_algo == EsmInsertAlgo::Improved {
            // Try to avoid a new leaf by redistributing with one neighbour.
            let size = self.tree.read_hdr(db).size;
            let left = if pos.leaf_start > 0 {
                Some(self.tree.try_descend(db, pos.leaf_start - 1)?)
            } else {
                None
            };
            let right = if pos.leaf_end() < size {
                Some(self.tree.try_descend(db, pos.leaf_end())?)
            } else {
                None
            };
            let fits = |n: &LeafPos| n.entry.count + pos.entry.count + len <= 2 * cap;
            let neighbour = match (left, right) {
                (Some(l), _) if fits(&l) => Some((l, true)),
                (_, Some(r)) if fits(&r) => Some((r, false)),
                _ => None,
            };
            if let Some((n, n_is_left)) = neighbour {
                // Stream: neighbour/leaf in object order, with the insert.
                let mut buf;
                if n_is_left {
                    buf = read_seg_bytes(db, n.entry.ptr, 0, n.entry.count);
                    buf.extend(read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count));
                    let at = cast::to_usize(n.entry.count) + p;
                    buf.splice(at..at, bytes.iter().copied());
                } else {
                    buf = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
                    buf.splice(p..p, bytes.iter().copied());
                    buf.extend(read_seg_bytes(db, n.entry.ptr, 0, n.entry.count));
                }
                let total = buf.len() as u64;
                let split = cast::to_usize(total.div_ceil(2));
                let entries = vec![
                    self.new_leaf(db, &buf[..split]),
                    self.new_leaf(db, &buf[split..]),
                ];
                ctx.free_extent_later(self.leaf_extent(pos.entry.ptr));
                ctx.free_extent_later(self.leaf_extent(n.entry.ptr));
                let (first, first_start) = if n_is_left {
                    (&n, n.leaf_start)
                } else {
                    (&pos, pos.leaf_start)
                };
                self.tree.remove_entry(db, ctx, &first.path);
                let again = self.tree.try_descend(db, first_start)?;
                self.tree.replace_entry(db, ctx, &again.path, entries);
                return Ok(());
            }
        }

        // Split: distribute the leaf plus the new bytes evenly over
        // ceil(total/cap) leaves.
        let mut buf = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
        buf.splice(p..p, bytes.iter().copied());
        let sizes = even_sizes(buf.len() as u64, cap);
        let mut entries = Vec::with_capacity(sizes.len());
        let mut o = 0usize;
        for &s in &sizes {
            let s = cast::to_usize(s);
            entries.push(self.new_leaf(db, &buf[o..o + s]));
            o += s;
        }
        ctx.free_extent_later(self.leaf_extent(pos.entry.ptr));
        self.tree.replace_entry(db, ctx, &pos.path, entries);
        Ok(())
    }
}

#[cfg(feature = "paranoid")]
impl EsmObject {
    /// Post-operation deep verification (the `paranoid` feature).
    fn paranoid_verify(&self, db: &mut Db) -> Result<()> {
        crate::paranoid::verify_object(self, db)
    }
}

impl LargeObject for EsmObject {
    fn kind(&self) -> StorageKind {
        StorageKind::Esm
    }

    fn root_page(&self) -> u32 {
        self.tree.root_page
    }

    fn size(&self, db: &mut Db) -> u64 {
        self.tree.read_hdr(db).size
    }

    fn append(&mut self, db: &mut Db, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        if bytes.len() > MAX_OP_BYTES {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        let mut ctx = OpCtx::new();
        match self.tree.rightmost(db) {
            None => {
                // First bytes of the object: lay out leaves directly.
                let sizes = append_sizes(bytes.len() as u64, self.cap());
                let mut off = 0usize;
                for &s in &sizes {
                    let s = cast::to_usize(s);
                    let e = self.new_leaf(db, &bytes[off..off + s]);
                    self.tree.append_entry(db, &mut ctx, e);
                    off += s;
                }
            }
            Some(pos) => {
                let free = self.cap() - pos.entry.count;
                if bytes.len() as u64 <= free {
                    append_in_place(db, pos.entry.ptr, pos.entry.count, bytes);
                    self.tree
                        .add_count(db, &mut ctx, &pos.path, bytes.len() as i64);
                } else {
                    self.append_overflow(db, &mut ctx, pos, bytes)?;
                }
            }
        }
        self.bump_size(db, bytes.len() as i64);
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        Ok(())
    }

    fn read(&self, db: &mut Db, off: u64, out: &mut [u8]) -> Result<()> {
        self.check_range(db, off, out.len() as u64)?;
        let mut at = off;
        let mut done = 0usize;
        while done < out.len() {
            let pos = self.tree.try_descend(db, at)?;
            let take = cast::to_usize((pos.leaf_end() - at).min((out.len() - done) as u64));
            if self.whole_leaf_io {
                // §4.5 ablation: fetch the entire leaf, then copy.
                let whole = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
                let s = cast::to_usize(pos.off_in_leaf);
                out[done..done + take].copy_from_slice(&whole[s..s + take]);
            } else {
                db.pool.read_segment(
                    AreaId::LEAF,
                    pos.entry.ptr,
                    pos.off_in_leaf,
                    &mut out[done..done + take],
                );
            }
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    fn locate(&self, db: &mut Db, off: u64) -> Result<crate::object::SegSpan> {
        self.check_range(db, off, 1)?;
        let pos = self.tree.try_descend(db, off)?;
        Ok(crate::object::SegSpan {
            start: pos.leaf_start,
            bytes: pos.entry.count,
            page: pos.entry.ptr,
        })
    }

    fn insert(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        let size = self.check_range(db, off, 0)?;
        if bytes.is_empty() {
            return Ok(());
        }
        if off == size {
            return self.append(db, bytes);
        }
        if bytes.len() > MAX_OP_BYTES {
            return Err(LobError::OperationTooLarge {
                len: bytes.len() as u64,
            });
        }
        let mut ctx = OpCtx::new();
        self.insert_inner(db, &mut ctx, off, bytes)?;
        self.bump_size(db, bytes.len() as i64);
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        Ok(())
    }

    fn delete(&mut self, db: &mut Db, off: u64, len: u64) -> Result<()> {
        self.check_range(db, off, len)?;
        if len == 0 {
            return Ok(());
        }
        let mut ctx = OpCtx::new();
        let mut remaining = len;
        while remaining > 0 {
            let pos = self.tree.try_descend(db, off)?;
            let del = (pos.leaf_end() - off).min(remaining);
            if del == pos.entry.count {
                // The whole leaf goes: no data I/O at all.
                ctx.free_extent_later(self.leaf_extent(pos.entry.ptr));
                self.tree.remove_entry(db, &mut ctx, &pos.path);
            } else {
                let mut content = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
                let s = cast::to_usize(pos.off_in_leaf);
                content.drain(s..s + cast::to_usize(del));
                let e = self.rewrite_leaf(db, &mut ctx, &pos, &content, pos.off_in_leaf);
                self.tree.replace_entry(db, &mut ctx, &pos.path, vec![e]);
            }
            remaining -= del;
        }
        // Both deletion boundaries may have left an under-half leaf.
        self.bump_size(db, -(len as i64));
        let total = self.tree.read_hdr(db).size;
        if total > 0 {
            self.fix_underflow(db, &mut ctx, off.min(total - 1))?;
            if off > 0 {
                let total = self.tree.read_hdr(db).size;
                self.fix_underflow(db, &mut ctx, (off - 1).min(total - 1))?;
            }
        }
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        Ok(())
    }

    fn replace(&mut self, db: &mut Db, off: u64, bytes: &[u8]) -> Result<()> {
        self.check_range(db, off, bytes.len() as u64)?;
        if bytes.is_empty() {
            return Ok(());
        }
        let mut ctx = OpCtx::new();
        let mut at = off;
        let mut done = 0usize;
        while done < bytes.len() {
            let pos = self.tree.try_descend(db, at)?;
            let take = cast::to_usize((pos.leaf_end() - at).min((bytes.len() - done) as u64));
            let s = cast::to_usize(pos.off_in_leaf);
            if db.config().shadowing {
                let mut content = read_seg_bytes(db, pos.entry.ptr, 0, pos.entry.count);
                content[s..s + take].copy_from_slice(&bytes[done..done + take]);
                let e = self.rewrite_leaf(db, &mut ctx, &pos, &content, pos.off_in_leaf);
                self.tree.replace_entry(db, &mut ctx, &pos.path, vec![e]);
            } else {
                patch_in_place(
                    db,
                    pos.entry.ptr,
                    pos.off_in_leaf,
                    &bytes[done..done + take],
                );
            }
            done += take;
            at += take as u64;
        }
        ctx.finish(db);
        #[cfg(feature = "paranoid")]
        self.paranoid_verify(db)?;
        Ok(())
    }

    fn trim(&mut self, _db: &mut Db) -> Result<()> {
        Ok(()) // ESM leaves are fixed-size; nothing to trim.
    }

    fn destroy(&mut self, db: &mut Db) -> Result<()> {
        // Walk the tree once (through the pool, so the reads are costed),
        // then free every leaf, every index page, and the root.
        for (_, e) in self.tree.collect_leaves_costed(db) {
            db.free_leaf(self.leaf_extent(e.ptr));
        }
        for page in self.tree.internal_pages(db) {
            db.free_meta_page(page);
        }
        db.free_meta_page(self.tree.root_page);
        Ok(())
    }

    fn utilization(&self, db: &Db) -> Utilization {
        let leaves = self.tree.collect_leaves(db);
        Utilization {
            object_bytes: leaves.iter().map(|(_, e)| e.count).sum(),
            data_pages: leaves.len() as u64 * u64::from(self.leaf_pages),
            index_pages: self.tree.index_page_count(db),
        }
    }

    fn segments(&self, db: &Db) -> Vec<crate::object::SegmentInfo> {
        self.tree
            .collect_leaves(db)
            .into_iter()
            .map(|(offset, e)| crate::object::SegmentInfo {
                offset,
                start_page: e.ptr,
                bytes: e.count,
                pages: self.leaf_pages,
            })
            .collect()
    }

    fn index_page_numbers(&self, db: &Db) -> Vec<u32> {
        let mut out = vec![self.tree.root_page];
        out.extend(self.tree.internal_pages(db));
        out
    }

    fn check_invariants(&self, db: &Db) -> Result<()> {
        self.tree.check_invariants(db)?;
        let cap = self.cap();
        let leaves = self.tree.collect_leaves(db);
        for (off, e) in &leaves {
            if e.count == 0 || e.count > cap {
                return Err(LobError::InvariantViolated(format!(
                    "leaf at {off} holds {} bytes, cap {cap}",
                    e.count
                )));
            }
            if leaves.len() > 1 && e.count * 2 < cap {
                return Err(LobError::InvariantViolated(format!(
                    "leaf at {off} under half full: {} of {cap}",
                    e.count
                )));
            }
        }
        Ok(())
    }

    fn snapshot(&self, db: &Db) -> Vec<u8> {
        let leaves = self.tree.collect_leaves(db);
        let mut out = Vec::with_capacity(leaves.iter().map(|(_, e)| e.count as usize).sum());
        for (_, e) in leaves {
            let pages = lobstore_simdisk::pages_for_bytes(e.count);
            let mut rem = cast::to_usize(e.count);
            for i in 0..pages {
                let page = db.peek_leaf_page(e.ptr + i);
                let take = rem.min(PAGE_SIZE);
                out.extend_from_slice(&page[..take]);
                rem -= take;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn db() -> Db {
        Db::paper_default()
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 31 + seed as usize) % 251) as u8)
            .collect()
    }

    fn make(db: &mut Db, leaf_pages: u32) -> EsmObject {
        EsmObject::create(db, EsmParams { leaf_pages }).unwrap()
    }

    #[test]
    fn create_open_roundtrip() {
        let mut db = db();
        let obj = make(&mut db, 16);
        let root = obj.root_page();
        let again = EsmObject::open(&mut db, root).unwrap();
        assert_eq!(again.leaf_pages(), 16);
        assert_eq!(again.kind(), StorageKind::Esm);
    }

    #[test]
    fn open_rejects_non_esm_pages() {
        let mut db = db();
        let page = db.alloc_meta_page();
        db.with_new_meta_page(page, |p| p[0] = 0xFF);
        assert!(matches!(
            EsmObject::open(&mut db, page),
            Err(LobError::Corrupt(_))
        ));
    }

    #[test]
    fn small_append_and_read() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, b"hello world").unwrap();
        assert_eq!(obj.size(&mut db), 11);
        let mut out = vec![0u8; 5];
        obj.read(&mut db, 6, &mut out).unwrap();
        assert_eq!(&out, b"world");
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.snapshot(&db), b"hello world");
    }

    #[test]
    fn appends_build_correct_content() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        let mut model = Vec::new();
        for i in 0..40 {
            let chunk = pattern(3_000 + i * 137, i as u8);
            obj.append(&mut db, &chunk).unwrap();
            model.extend_from_slice(&chunk);
            obj.check_invariants(&db).unwrap();
        }
        assert_eq!(obj.size(&mut db), model.len() as u64);
        assert_eq!(obj.snapshot(&db), model);
    }

    #[test]
    fn exact_fit_appends_never_rewrite_existing_leaves() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, &pattern(4096, 1)).unwrap();
        db.reset_io_stats();
        obj.append(&mut db, &pattern(4096, 2)).unwrap();
        let s = db.io_stats();
        // Exactly one new leaf written; no leaf read back.
        assert_eq!(s.pages_read, 0, "no data pages re-read: {s}");
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.utilization(&db).object_bytes, 8192);
    }

    #[test]
    fn utilization_near_one_after_exact_build() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        for i in 0..64 {
            obj.append(&mut db, &pattern(16 * 1024, i)).unwrap();
        }
        let u = obj.utilization(&db);
        assert!(u.ratio() > 0.95, "utilization {} too low", u.ratio());
    }

    #[test]
    fn mismatched_appends_keep_leaves_at_least_half_full() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        for i in 0..200 {
            obj.append(&mut db, &pattern(3 * 1024, i as u8)).unwrap();
            obj.check_invariants(&db).unwrap();
        }
        let u = obj.utilization(&db);
        assert!(u.ratio() > 0.55, "utilization {}", u.ratio());
    }

    #[test]
    fn insert_within_a_leaf() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        obj.append(&mut db, b"aaaabbbb").unwrap();
        obj.insert(&mut db, 4, b"XY").unwrap();
        assert_eq!(obj.snapshot(&db), b"aaaaXYbbbb");
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn insert_at_end_is_append() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, b"abc").unwrap();
        obj.insert(&mut db, 3, b"def").unwrap();
        assert_eq!(obj.snapshot(&db), b"abcdef");
    }

    #[test]
    fn insert_overflow_splits_evenly() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, &pattern(4096, 1)).unwrap(); // one full leaf
        let mut model = pattern(4096, 1);
        let ins = pattern(100_000, 2);
        obj.insert(&mut db, 2000, &ins).unwrap();
        model.splice(2000..2000, ins.iter().copied());
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
        // ~26 leaves, each ≥ half full and ~96% utilization (§4.5).
        let u = obj.utilization(&db);
        assert!(u.ratio() > 0.9, "utilization {}", u.ratio());
    }

    #[test]
    fn improved_insert_uses_neighbour_to_avoid_new_leaf() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        // Two appends: the overflow redistribution leaves [3072, 3072].
        obj.append(&mut db, &pattern(4096, 1)).unwrap();
        obj.append(&mut db, &pattern(2048, 2)).unwrap();
        // Insert 2 KB into leaf 0 (3072 + 2048 > 4096): improved
        // redistributes with the right neighbour instead of splitting.
        obj.insert_algo = EsmInsertAlgo::Improved;
        obj.insert(&mut db, 100, &pattern(2048, 3)).unwrap();
        obj.check_invariants(&db).unwrap();
        let u = obj.utilization(&db);
        assert_eq!(
            u.data_pages, 2,
            "improved algorithm should stay at 2 leaves"
        );
    }

    #[test]
    fn basic_insert_creates_more_leaves_than_improved() {
        let run = |algo: EsmInsertAlgo| {
            let mut db = db();
            let mut obj = make(&mut db, 1);
            obj.insert_algo = algo;
            obj.append(&mut db, &pattern(4096, 1)).unwrap(); // → [4096]
            obj.append(&mut db, &pattern(2048, 2)).unwrap(); // → [3072, 3072]
            obj.insert(&mut db, 100, &pattern(2048, 3)).unwrap();
            obj.check_invariants(&db).unwrap();
            obj.utilization(&db).data_pages
        };
        assert!(run(EsmInsertAlgo::Basic) > run(EsmInsertAlgo::Improved));
    }

    #[test]
    fn delete_whole_leaves_costs_no_data_io() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        for i in 0..8 {
            obj.append(&mut db, &pattern(4096, i)).unwrap();
        }
        db.reset_io_stats();
        // Delete leaves 2..6 exactly (aligned to leaf boundaries).
        obj.delete(&mut db, 2 * 4096, 4 * 4096).unwrap();
        let s = db.io_stats();
        assert_eq!(s.pages_read, 0, "whole-leaf delete reads no data: {s}");
        obj.check_invariants(&db).unwrap();
        assert_eq!(obj.size(&mut db), 4 * 4096);
    }

    #[test]
    fn delete_within_one_leaf() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        let data = pattern(10_000, 7);
        obj.append(&mut db, &data).unwrap();
        obj.delete(&mut db, 1_000, 2_000).unwrap();
        let mut model = data.clone();
        model.drain(1_000..3_000);
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn delete_spanning_many_leaves_rebalances() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        let mut model = Vec::new();
        for i in 0..20 {
            let c = pattern(4096, i);
            obj.append(&mut db, &c).unwrap();
            model.extend_from_slice(&c);
        }
        // Unaligned delete spanning several leaves.
        obj.delete(&mut db, 1_500, 30_000).unwrap();
        model.drain(1_500..31_500);
        assert_eq!(obj.snapshot(&db), model);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn delete_everything_leaves_empty_object() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, &pattern(20_000, 3)).unwrap();
        obj.delete(&mut db, 0, 20_000).unwrap();
        assert_eq!(obj.size(&mut db), 0);
        assert!(obj.snapshot(&db).is_empty());
        obj.check_invariants(&db).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 0, "all leaves freed");
    }

    #[test]
    fn replace_overwrites_without_size_change() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        let data = pattern(12_000, 1);
        obj.append(&mut db, &data).unwrap();
        let patch = pattern(5_000, 9);
        obj.replace(&mut db, 3_000, &patch).unwrap();
        let mut model = data.clone();
        model[3_000..8_000].copy_from_slice(&patch);
        assert_eq!(obj.snapshot(&db), model);
        assert_eq!(obj.size(&mut db), 12_000);
        obj.check_invariants(&db).unwrap();
    }

    #[test]
    fn out_of_range_operations_error() {
        let mut db = db();
        let mut obj = make(&mut db, 1);
        obj.append(&mut db, b"12345").unwrap();
        let mut out = [0u8; 2];
        assert!(matches!(
            obj.read(&mut db, 4, &mut out),
            Err(LobError::OutOfRange { .. })
        ));
        assert!(obj.insert(&mut db, 6, b"x").is_err());
        assert!(obj.delete(&mut db, 3, 3).is_err());
        assert!(obj.replace(&mut db, 5, b"x").is_err());
    }

    #[test]
    fn destroy_returns_all_storage() {
        let mut db = db();
        let mut obj = make(&mut db, 4);
        for i in 0..30 {
            obj.append(&mut db, &pattern(50_000, i)).unwrap();
        }
        obj.delete(&mut db, 100, 200).unwrap();
        obj.destroy(&mut db).unwrap();
        assert_eq!(db.leaf_pages_allocated(), 0);
        assert_eq!(db.meta_pages_allocated(), 0);
    }

    #[test]
    fn random_ops_match_reference_model() {
        for leaf_pages in [1u32, 4] {
            let mut db = db();
            let mut obj = make(&mut db, leaf_pages);
            let mut model: Vec<u8> = Vec::new();
            let mut rng = StdRng::seed_from_u64(7 + u64::from(leaf_pages));
            for step in 0..120 {
                let choice = rng.gen_range(0..10);
                if model.is_empty() || choice < 4 {
                    let chunk = pattern(rng.gen_range(1..20_000), rng.gen());
                    let off = rng.gen_range(0..=model.len());
                    obj.insert(&mut db, off as u64, &chunk).unwrap();
                    model.splice(off..off, chunk.iter().copied());
                } else if choice < 7 {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(15_000));
                    obj.delete(&mut db, off as u64, len as u64).unwrap();
                    model.drain(off..off + len);
                } else if choice < 9 {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(8_000));
                    let mut out = vec![0u8; len];
                    obj.read(&mut db, off as u64, &mut out).unwrap();
                    assert_eq!(out[..], model[off..off + len], "read mismatch @{step}");
                } else {
                    let off = rng.gen_range(0..model.len());
                    let len = rng.gen_range(1..=(model.len() - off).min(8_000));
                    let patch = pattern(len, rng.gen());
                    obj.replace(&mut db, off as u64, &patch).unwrap();
                    model[off..off + len].copy_from_slice(&patch);
                }
                obj.check_invariants(&db)
                    .unwrap_or_else(|e| panic!("leaf_pages={leaf_pages} step={step}: {e}"));
                assert_eq!(
                    obj.snapshot(&db),
                    model,
                    "content mismatch at step {step} (leaf_pages {leaf_pages})"
                );
            }
        }
    }

    #[test]
    fn whole_leaf_io_costs_more_for_small_reads() {
        let mut db1 = db();
        let mut obj = make(&mut db1, 16);
        obj.append(&mut db1, &pattern(16 * 4096, 1)).unwrap();
        let mut out = vec![0u8; 100];
        db1.reset_io_stats();
        obj.read(&mut db1, 200, &mut out).unwrap();
        let partial = db1.io_stats();

        obj.whole_leaf_io = true;
        db1.reset_io_stats();
        obj.read(&mut db1, 40_000, &mut out).unwrap();
        let whole = db1.io_stats();
        assert!(whole.pages_read > partial.pages_read);
        assert_eq!(partial.pages_read, 1, "partial read fetches one page");
    }
}
