#!/bin/bash
# Regenerate every table and figure at the paper's scale (10 MB / 10k ops).
set -u
cd /root/repo
for b in fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table2 table3 fig_deletes summary46 \
         ablation_insert_algo ablation_buffering ablation_shadowing ablation_scaling; do
  echo "[$(date +%T)] running $b"
  ./target/release/$b "$@" > results/$b.txt 2>&1 || echo "$b FAILED"
done
echo "[$(date +%T)] all done"
