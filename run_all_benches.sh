#!/bin/bash
# Regenerate every table and figure at the paper's scale (10 MB / 10k ops).
# Each binary writes its own report into results/ (the `--out-dir` default)
# plus a machine-readable JSON document; stdout stays on the terminal for
# progress. Extra arguments are forwarded to every binary — in particular
# `./run_all_benches.sh --quick` runs the whole sweep at the 1 MB /
# 1000 ops smoke scale (seconds instead of minutes; CI uses this).
set -u
cd /root/repo
mkdir -p results
mode="paper scale"
for a in "$@"; do [ "$a" = "--quick" ] && mode="smoke scale (--quick)"; done
echo "[$(date +%T)] bench sweep at $mode"
for b in fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table2 table3 fig_deletes summary46 \
         ablation_insert_algo ablation_buffering ablation_shadowing ablation_scaling \
         throughput aging; do
  echo "[$(date +%T)] running $b"
  ./target/release/$b --out-dir results --json-out results/$b.json "$@" \
    > /dev/null 2> results/$b.err || echo "$b FAILED"
done
echo "[$(date +%T)] all done"
